// Package mem provides the machine-memory substrate for the simulated
// hypervisor: fixed-size page frames, a machine frame pool, and dirty
// bitmaps with both bit-granularity and word-granularity scanning (the
// latter is CRIMES Optimization 3, "Dirty Page Scan").
package mem

import (
	"errors"
	"fmt"
	"math/bits"
	"sync"
)

const (
	// PageSize is the size of a machine page frame in bytes.
	PageSize = 4096
	// PageShift is log2(PageSize).
	PageShift = 12
)

// PFN is a guest-physical Page Frame Number.
type PFN uint64

// MFN is a Machine Frame Number, indexing frames of host machine memory.
type MFN uint64

// InvalidMFN marks an unmapped PFN in a physmap.
const InvalidMFN = MFN(^uint64(0))

var (
	// ErrOutOfMemory is returned when the machine pool has no free frames.
	ErrOutOfMemory = errors.New("mem: out of machine memory")
	// ErrBadFrame is returned for out-of-range or unallocated frames.
	ErrBadFrame = errors.New("mem: bad machine frame")
)

// Machine models host physical memory as a pool of page frames. The
// allocator is safe for concurrent use: fleet workers create and destroy
// domains (and resolve frames) from parallel epoch loops.
type Machine struct {
	mu        sync.RWMutex
	frames    [][]byte
	allocated []bool
	free      []MFN
}

// NewMachine creates a machine with the given number of page frames.
func NewMachine(frames int) *Machine {
	m := &Machine{
		frames:    make([][]byte, frames),
		allocated: make([]bool, frames),
		free:      make([]MFN, 0, frames),
	}
	for i := frames - 1; i >= 0; i-- {
		m.free = append(m.free, MFN(i))
	}
	return m
}

// TotalFrames reports the machine's frame count.
func (m *Machine) TotalFrames() int { return len(m.frames) }

// FreeFrames reports how many frames remain unallocated.
func (m *Machine) FreeFrames() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.free)
}

// Alloc allocates a single zeroed machine frame.
func (m *Machine) Alloc() (MFN, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocLocked()
}

func (m *Machine) allocLocked() (MFN, error) {
	if len(m.free) == 0 {
		return InvalidMFN, ErrOutOfMemory
	}
	mfn := m.free[len(m.free)-1]
	m.free = m.free[:len(m.free)-1]
	m.allocated[mfn] = true
	if m.frames[mfn] == nil {
		m.frames[mfn] = make([]byte, PageSize)
	} else {
		clearPage(m.frames[mfn])
	}
	return mfn, nil
}

// AllocN allocates n machine frames atomically: either all n are
// allocated or none are.
func (m *Machine) AllocN(n int) ([]MFN, error) {
	if n < 0 {
		return nil, fmt.Errorf("mem: alloc %d frames: negative count", n)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.free) < n {
		return nil, fmt.Errorf("mem: alloc %d frames (%d free): %w", n, len(m.free), ErrOutOfMemory)
	}
	out := make([]MFN, n)
	for i := range out {
		mfn, err := m.allocLocked()
		if err != nil {
			return nil, err
		}
		out[i] = mfn
	}
	return out, nil
}

// Free releases a machine frame back to the pool.
func (m *Machine) Free(mfn MFN) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.checkLocked(mfn); err != nil {
		return err
	}
	m.allocated[mfn] = false
	m.free = append(m.free, mfn)
	return nil
}

// Frame returns the backing page for an allocated machine frame. The
// returned slice aliases machine memory: writes through it are writes to
// the machine frame. This is the moral equivalent of Xen's
// xenforeignmemory_map.
func (m *Machine) Frame(mfn MFN) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if err := m.checkLocked(mfn); err != nil {
		return nil, err
	}
	return m.frames[mfn], nil
}

func (m *Machine) checkLocked(mfn MFN) error {
	if uint64(mfn) >= uint64(len(m.frames)) || !m.allocated[mfn] {
		return fmt.Errorf("mem: frame %d: %w", mfn, ErrBadFrame)
	}
	return nil
}

func clearPage(p []byte) {
	for i := range p {
		p[i] = 0
	}
}

// Bitmap is a dirty-page bitmap, one bit per PFN.
type Bitmap struct {
	words []uint64
	nbits int
}

// NewBitmap creates a bitmap covering nbits pages.
func NewBitmap(nbits int) *Bitmap {
	return &Bitmap{
		words: make([]uint64, (nbits+63)/64),
		nbits: nbits,
	}
}

// Len reports the number of bits the bitmap covers.
func (b *Bitmap) Len() int { return b.nbits }

// Set marks bit i.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
}

// Clear unmarks bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
}

// Test reports whether bit i is set.
func (b *Bitmap) Test(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// ClearAll unmarks every bit.
func (b *Bitmap) ClearAll() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count reports the number of set bits.
func (b *Bitmap) Count() int {
	n := 0
	for _, w := range b.words {
		n += popcount(w)
	}
	return n
}

// ScanBits collects set bits by testing every bit individually. This is
// Remus's original linear scan: cost grows with total VM size regardless
// of how many pages are dirty.
func (b *Bitmap) ScanBits(dst []PFN) []PFN {
	for i := 0; i < b.nbits; i++ {
		if b.Test(i) {
			dst = append(dst, PFN(i))
		}
	}
	return dst
}

// ScanWords collects set bits by first testing machine words and only
// descending into non-zero words. This is CRIMES Optimization 3: most
// memory is clean, so most words are zero and are skipped in one compare.
func (b *Bitmap) ScanWords(dst []PFN) []PFN {
	for wi, w := range b.words {
		if w == 0 {
			continue
		}
		base := wi << 6
		for w != 0 {
			bit := trailingZeros(w)
			i := base + bit
			if i >= b.nbits {
				break
			}
			dst = append(dst, PFN(i))
			w &= w - 1
		}
	}
	return dst
}

// scanParallelMinWords is the bitmap size below which ScanWordsParallel
// falls back to the serial scan: sharding a small bitmap costs more in
// goroutine dispatch than the scan itself.
const scanParallelMinWords = 1024

// ScanWordsParallel is ScanWords sharded across a worker pool for
// multi-GB dirty bitmaps (the Figure 6b axis: scan cost grows with VM
// size even when almost every word is zero). The word array is split
// into contiguous, disjoint shards — one per worker — each scanned
// independently; shard results are concatenated in shard order, so the
// returned PFNs are in the same ascending order ScanWords produces.
// workers <= 1 (or a small bitmap) degrades to the serial scan.
func (b *Bitmap) ScanWordsParallel(dst []PFN, workers int) []PFN {
	if workers > len(b.words) {
		workers = len(b.words)
	}
	if workers <= 1 || len(b.words) < scanParallelMinWords {
		return b.ScanWords(dst)
	}
	parts := make([][]PFN, workers)
	per := (len(b.words) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > len(b.words) {
			hi = len(b.words)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var out []PFN
			for wi := lo; wi < hi; wi++ {
				word := b.words[wi]
				if word == 0 {
					continue
				}
				base := wi << 6
				for word != 0 {
					i := base + trailingZeros(word)
					if i >= b.nbits {
						break
					}
					out = append(out, PFN(i))
					word &= word - 1
				}
			}
			parts[w] = out
		}(w, lo, hi)
	}
	wg.Wait()
	for _, part := range parts {
		dst = append(dst, part...)
	}
	return dst
}

// Or sets every bit that is set in src. The bitmaps must be the same
// length.
func (b *Bitmap) Or(src *Bitmap) error {
	if b.nbits != src.nbits {
		return fmt.Errorf("mem: or bitmap: length mismatch %d != %d", b.nbits, src.nbits)
	}
	for i, w := range src.words {
		b.words[i] |= w
	}
	return nil
}

// CopyFrom replaces this bitmap's contents with src's. The bitmaps must
// be the same length.
func (b *Bitmap) CopyFrom(src *Bitmap) error {
	if b.nbits != src.nbits {
		return fmt.Errorf("mem: copy bitmap: length mismatch %d != %d", b.nbits, src.nbits)
	}
	copy(b.words, src.words)
	return nil
}

func popcount(w uint64) int { return bits.OnesCount64(w) }

func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }
