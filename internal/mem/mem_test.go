package mem

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMachineAllocFree(t *testing.T) {
	m := NewMachine(4)
	if got := m.TotalFrames(); got != 4 {
		t.Fatalf("TotalFrames = %d, want 4", got)
	}
	mfns, err := m.AllocN(4)
	if err != nil {
		t.Fatalf("AllocN: %v", err)
	}
	if m.FreeFrames() != 0 {
		t.Fatalf("FreeFrames = %d, want 0", m.FreeFrames())
	}
	if _, err := m.Alloc(); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("Alloc on full machine: err = %v, want ErrOutOfMemory", err)
	}
	seen := make(map[MFN]bool)
	for _, mfn := range mfns {
		if seen[mfn] {
			t.Fatalf("duplicate MFN %d", mfn)
		}
		seen[mfn] = true
	}
	if err := m.Free(mfns[0]); err != nil {
		t.Fatalf("Free: %v", err)
	}
	if m.FreeFrames() != 1 {
		t.Fatalf("FreeFrames after free = %d, want 1", m.FreeFrames())
	}
}

func TestMachineAllocNInsufficient(t *testing.T) {
	m := NewMachine(2)
	if _, err := m.AllocN(3); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("AllocN(3) on 2-frame machine: err = %v, want ErrOutOfMemory", err)
	}
	if _, err := m.AllocN(-1); err == nil {
		t.Fatal("AllocN(-1) succeeded, want error")
	}
}

func TestFrameWriteVisibility(t *testing.T) {
	m := NewMachine(2)
	mfn, err := m.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	p1, err := m.Frame(mfn)
	if err != nil {
		t.Fatalf("Frame: %v", err)
	}
	p1[0] = 0xAB
	p2, err := m.Frame(mfn)
	if err != nil {
		t.Fatalf("Frame: %v", err)
	}
	if p2[0] != 0xAB {
		t.Fatalf("frame write not visible through second mapping: got %#x", p2[0])
	}
	if len(p1) != PageSize {
		t.Fatalf("frame size = %d, want %d", len(p1), PageSize)
	}
}

func TestFrameReuseIsZeroed(t *testing.T) {
	m := NewMachine(1)
	mfn, err := m.Alloc()
	if err != nil {
		t.Fatalf("Alloc: %v", err)
	}
	p, _ := m.Frame(mfn)
	p[100] = 0xFF
	if err := m.Free(mfn); err != nil {
		t.Fatalf("Free: %v", err)
	}
	mfn2, err := m.Alloc()
	if err != nil {
		t.Fatalf("Alloc after free: %v", err)
	}
	p2, _ := m.Frame(mfn2)
	if p2[100] != 0 {
		t.Fatalf("reused frame not zeroed: byte 100 = %#x", p2[100])
	}
}

func TestFrameErrors(t *testing.T) {
	m := NewMachine(1)
	if _, err := m.Frame(0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("Frame(unallocated): err = %v, want ErrBadFrame", err)
	}
	if _, err := m.Frame(99); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("Frame(out of range): err = %v, want ErrBadFrame", err)
	}
	if err := m.Free(0); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("Free(unallocated): err = %v, want ErrBadFrame", err)
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for _, i := range []int{0, 63, 64, 127, 129} {
		b.Set(i)
		if !b.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
	}
	if b.Count() != 5 {
		t.Fatalf("Count = %d, want 5", b.Count())
	}
	b.Clear(64)
	if b.Test(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	b.ClearAll()
	if b.Count() != 0 {
		t.Fatalf("Count after ClearAll = %d, want 0", b.Count())
	}
}

func TestBitmapScanEquivalenceFixed(t *testing.T) {
	b := NewBitmap(300)
	want := []PFN{0, 1, 63, 64, 65, 128, 255, 299}
	for _, p := range want {
		b.Set(int(p))
	}
	bits := b.ScanBits(nil)
	words := b.ScanWords(nil)
	if !pfnsEqual(bits, want) {
		t.Fatalf("ScanBits = %v, want %v", bits, want)
	}
	if !pfnsEqual(words, want) {
		t.Fatalf("ScanWords = %v, want %v", words, want)
	}
}

// Property: the optimized word scan returns exactly the same PFNs, in the
// same order, as the bit-by-bit scan, for any bitmap.
func TestBitmapScanEquivalenceProperty(t *testing.T) {
	f := func(setBits []uint16, size uint16) bool {
		n := int(size)%2048 + 1
		b := NewBitmap(n)
		for _, s := range setBits {
			b.Set(int(s) % n)
		}
		return pfnsEqual(b.ScanBits(nil), b.ScanWords(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Count always equals the number of PFNs either scan returns.
func TestBitmapCountMatchesScanProperty(t *testing.T) {
	f := func(setBits []uint16) bool {
		b := NewBitmap(4096)
		for _, s := range setBits {
			b.Set(int(s) % 4096)
		}
		return b.Count() == len(b.ScanWords(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapCopyFrom(t *testing.T) {
	a := NewBitmap(100)
	a.Set(7)
	a.Set(99)
	b := NewBitmap(100)
	if err := b.CopyFrom(a); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if !b.Test(7) || !b.Test(99) || b.Count() != 2 {
		t.Fatal("CopyFrom did not replicate contents")
	}
	c := NewBitmap(50)
	if err := c.CopyFrom(a); err == nil {
		t.Fatal("CopyFrom with mismatched lengths succeeded, want error")
	}
}

func TestBitmapWordScanLastPartialWord(t *testing.T) {
	// A bit set in the final, partial word must be found exactly once.
	b := NewBitmap(70)
	b.Set(69)
	got := b.ScanWords(nil)
	if len(got) != 1 || got[0] != 69 {
		t.Fatalf("ScanWords = %v, want [69]", got)
	}
}

func pfnsEqual(a, b []PFN) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkBitmapScanBits(b *testing.B) {
	benchScan(b, func(bm *Bitmap, dst []PFN) []PFN { return bm.ScanBits(dst) })
}

func BenchmarkBitmapScanWords(b *testing.B) {
	benchScan(b, func(bm *Bitmap, dst []PFN) []PFN { return bm.ScanWords(dst) })
}

func benchScan(b *testing.B, scan func(*Bitmap, []PFN) []PFN) {
	// 4 GiB VM worth of pages with a realistic ~1% dirty rate.
	const pages = 4 << 30 / PageSize
	bm := NewBitmap(pages)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < pages/100; i++ {
		bm.Set(rng.Intn(pages))
	}
	dst := make([]PFN, 0, pages/64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = scan(bm, dst[:0])
	}
	_ = dst
}

// TestScanWordsParallelMatchesSerial: the sharded scan returns exactly
// the same PFNs, in the same ascending order, as the serial word scan —
// for small bitmaps (below the parallel threshold), large randomized
// ones (beyond 64Ki bits, where real sharding kicks in), and any worker
// count.
func TestScanWordsParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	sizes := []int{1, 64, 300, 1 << 16, 1<<17 + 77}
	for _, n := range sizes {
		b := NewBitmap(n)
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				b.Set(i)
			}
		}
		want := b.ScanWords(nil)
		for _, workers := range []int{1, 2, 4, 8} {
			got := b.ScanWordsParallel(nil, workers)
			if !pfnsEqual(got, want) {
				t.Fatalf("n=%d workers=%d: parallel scan diverged (got %d pfns, want %d)",
					n, workers, len(got), len(want))
			}
		}
		// Appending to a non-empty dst must preserve the prefix.
		prefix := []PFN{1234}
		got := b.ScanWordsParallel(prefix, 4)
		if len(got) != len(want)+1 || got[0] != 1234 || !pfnsEqual(got[1:], want) {
			t.Fatalf("n=%d: parallel scan mishandled non-empty dst", n)
		}
	}
}
