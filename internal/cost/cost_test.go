package cost

import (
	"testing"
	"time"
)

// swaptionsCounts reproduces the Figure 4 configuration: a 1 GiB VM
// dirtying ~2200 pages in a 200 ms epoch.
func swaptionsCounts() Counts {
	return Counts{
		TotalPages:  1 << 30 / 4096,
		DirtyPages:  2200,
		BytesCopied: 2200 * 4096,
		VMINodes:    12,
		Canaries:    400,
	}
}

func TestOptimizationOrdering(t *testing.T) {
	m := Default()
	c := swaptionsCounts()
	var prev time.Duration = 1 << 62
	for _, opt := range []Optimization{NoOpt, Memcpy, Premap, Full} {
		total := m.Checkpoint(opt, c).Total()
		if total >= prev {
			t.Fatalf("%v pause %v not cheaper than previous %v", opt, total, prev)
		}
		prev = total
	}
}

func TestFigure4Calibration(t *testing.T) {
	m := Default()
	c := swaptionsCounts()
	noopt := m.Checkpoint(NoOpt, c).Total()
	full := m.Checkpoint(Full, c).Total()
	// Paper: 29.86 ms -> 10.21 ms (67% reduction). Accept +-20%.
	if got := noopt.Seconds() * 1000; got < 24 || got > 36 {
		t.Fatalf("No-opt pause = %.2f ms, want ~30", got)
	}
	if got := full.Seconds() * 1000; got < 8 || got > 13 {
		t.Fatalf("Full pause = %.2f ms, want ~10", got)
	}
	reduction := 1 - float64(full)/float64(noopt)
	if reduction < 0.55 || reduction > 0.8 {
		t.Fatalf("pause reduction = %.0f%%, want ~67%%", 100*reduction)
	}
}

func TestCopyDominatesNoOpt(t *testing.T) {
	// Paper: "Copying data from the primary to backup alone takes about
	// 70% of the total time spent in the paused state."
	m := Default()
	p := m.Checkpoint(NoOpt, swaptionsCounts())
	share := float64(p.Copy) / float64(p.Total())
	if share < 0.6 || share > 0.85 {
		t.Fatalf("copy share = %.2f, want ~0.7", share)
	}
}

func TestBitscanOptimization(t *testing.T) {
	m := Default()
	c := swaptionsCounts()
	slow := m.Checkpoint(Premap, c).Bitscan
	fast := m.Checkpoint(Full, c).Bitscan
	if fast*5 > slow {
		t.Fatalf("word scan %v not much faster than bit scan %v", fast, slow)
	}
	// Paper: 2.7 ms -> 0.14 ms for the 1 GiB VM.
	if msv := slow.Seconds() * 1000; msv < 2 || msv > 4 {
		t.Fatalf("bit scan = %.2f ms, want ~2.7", msv)
	}
	if msv := fast.Seconds() * 1000; msv > 0.5 {
		t.Fatalf("word scan = %.2f ms, want ~0.15", msv)
	}
}

func TestMemcpyMapsBothVMs(t *testing.T) {
	m := Default()
	c := swaptionsCounts()
	memcpyMap := m.Checkpoint(Memcpy, c).Map
	nooptMap := m.Checkpoint(NoOpt, c).Map
	ratio := float64(memcpyMap) / float64(nooptMap)
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("memcpy/no-opt map ratio = %.2f, want ~2 (maps both VMs)", ratio)
	}
	if premap := m.Checkpoint(Premap, c).Map; premap >= nooptMap/10 {
		t.Fatalf("premap map cost %v not near-constant", premap)
	}
}

func TestSocketSaturation(t *testing.T) {
	m := Default()
	small := Counts{TotalPages: 1000, DirtyPages: 100, BytesCopied: 100 * 4096}
	big := Counts{TotalPages: 1000, DirtyPages: 100, BytesCopied: 100 * 4096 * 300}
	perByteSmall := float64(m.Checkpoint(NoOpt, small).Copy) / float64(small.BytesCopied)
	perByteBig := float64(m.Checkpoint(NoOpt, big).Copy) / float64(big.BytesCopied)
	if perByteBig <= perByteSmall {
		t.Fatal("socket path does not saturate with epoch size")
	}
	// The memcpy path must stay linear.
	mSmall := float64(m.Checkpoint(Full, small).Copy) / float64(small.BytesCopied)
	mBig := float64(m.Checkpoint(Full, big).Copy) / float64(big.BytesCopied)
	if mBig != mSmall {
		t.Fatal("memcpy path is not linear")
	}
}

func TestCanaryRateMatchesPaper(t *testing.T) {
	// §5.5: 90,000 canaries validated per millisecond -> ~11ns each.
	m := Default()
	perMs := 1e6 / m.CanaryCheckNs
	if perMs < 80000 || perMs > 100000 {
		t.Fatalf("canary rate = %.0f/ms, want ~90,000", perMs)
	}
}

func TestVMISetupCostsMatchTable3(t *testing.T) {
	m := Default()
	if m.VMIInitNs < 60e6 || m.VMIInitNs > 75e6 {
		t.Fatalf("VMI init = %.1f ms, want ~67", m.VMIInitNs/1e6)
	}
	if m.VMIPreprocessNs < 45e6 || m.VMIPreprocessNs > 60e6 {
		t.Fatalf("VMI preprocess = %.1f ms, want ~54", m.VMIPreprocessNs/1e6)
	}
}

func TestPhasesTotal(t *testing.T) {
	p := Phases{Suspend: 1, VMI: 2, Bitscan: 3, Map: 4, Copy: 5, Resume: 6}
	if p.Total() != 21 {
		t.Fatalf("Total = %d", p.Total())
	}
}

func TestOptimizationStrings(t *testing.T) {
	for opt, want := range map[Optimization]string{
		NoOpt: "No-opt", Memcpy: "Memcpy", Premap: "Pre-map", Full: "Full",
	} {
		if opt.String() != want {
			t.Errorf("%d.String() = %q, want %q", opt, opt.String(), want)
		}
	}
}

func TestBitmapScanStandalone(t *testing.T) {
	m := Default()
	pages := 16 << 30 / 4096 // 16 GiB VM
	slow := m.BitmapScan(pages, pages/100, false)
	fast := m.BitmapScan(pages, pages/100, true)
	if fast >= slow {
		t.Fatal("optimized scan not faster")
	}
	// Figure 6b: tens of ms unoptimized at 16 GiB.
	if msv := slow.Seconds() * 1000; msv < 20 || msv > 100 {
		t.Fatalf("16GiB bit scan = %.1f ms, want tens of ms", msv)
	}
}

func TestPremapStartupScalesWithVMSize(t *testing.T) {
	m := Default()
	if m.PremapStartup(2000) <= m.PremapStartup(1000) {
		t.Fatal("premap startup not increasing with pages")
	}
}

// TestCheckpointParallelSerialInvariant pins the reproduction
// guarantee: at one worker (or fewer) the parallel pricing is
// bit-identical to Checkpoint's, so Table 1 / Figure 3 / Figure 4 are
// unaffected by the parallel pause path.
func TestCheckpointParallelSerialInvariant(t *testing.T) {
	m := Default()
	counts := Counts{TotalPages: 1 << 18, DirtyPages: 9000, BytesCopied: 9000 * 4096,
		VMINodes: 12, Canaries: 500, RemotePages: 9000}
	for _, opt := range []Optimization{NoOpt, Memcpy, Premap, Full} {
		want := m.Checkpoint(opt, counts)
		for _, w := range []int{-1, 0, 1} {
			if got := m.CheckpointParallel(opt, counts, w); got != want {
				t.Fatalf("%s workers=%d: %+v != serial %+v", opt, w, got, want)
			}
		}
	}
}

// TestCheckpointParallelSpeedup: on a copy-dominated 64 MiB dirty set
// the modeled pause shrinks at least 2x from 1 to 4 workers, the
// Amdahl speedup is monotone, and the remote ship leaves the pause.
func TestCheckpointParallelSpeedup(t *testing.T) {
	m := Default()
	const pages = 16384 // 64 MiB dirty
	counts := Counts{TotalPages: pages, DirtyPages: pages, BytesCopied: pages * 4096}
	p1 := m.CheckpointParallel(Full, counts, 1).Total()
	p4 := m.CheckpointParallel(Full, counts, 4).Total()
	if ratio := float64(p1) / float64(p4); ratio < 2 {
		t.Fatalf("4-worker pause speedup = %.2fx, want >= 2x (p1=%v p4=%v)", ratio, p1, p4)
	}
	if s2, s4 := m.Speedup(2), m.Speedup(4); !(1 < s2 && s2 < s4) {
		t.Fatalf("Speedup not monotone: s2=%.2f s4=%.2f", s2, s4)
	}
	remote := counts
	remote.RemotePages = pages
	if got := m.CheckpointParallel(Full, remote, 4); got != m.CheckpointParallel(Full, counts, 4) {
		t.Fatal("remote pages still charged inside the parallel pause window")
	}
}

// TestCheckpointContendedIdentity pins the fleet reproduction
// guarantee: with at most one concurrent checkpoint there is no
// contention, so the contended pricing is bit-identical to
// CheckpointParallel at every worker count — a one-VM fleet reproduces
// the single-VM numbers exactly.
func TestCheckpointContendedIdentity(t *testing.T) {
	m := Default()
	counts := Counts{TotalPages: 1 << 18, DirtyPages: 9000, BytesCopied: 9000 * 4096,
		VMINodes: 12, Canaries: 500}
	for _, opt := range []Optimization{NoOpt, Memcpy, Premap, Full} {
		for _, w := range []int{1, 2, 4, 8} {
			want := m.CheckpointParallel(opt, counts, w)
			for _, conc := range []int{-1, 0, 1} {
				if got := m.CheckpointContended(opt, counts, w, conc); got != want {
					t.Fatalf("%s workers=%d concurrent=%d: %+v != uncontended %+v",
						opt, w, conc, got, want)
				}
			}
		}
	}
}

// TestCheckpointContendedDegrades: splitting the pool across concurrent
// checkpoints can only slow each one down, monotonically in the number
// of contenders, and oversubscription (more VMs than workers) costs
// extra queueing on top of the serial floor.
func TestCheckpointContendedDegrades(t *testing.T) {
	m := Default()
	const pages = 16384
	counts := Counts{TotalPages: pages, DirtyPages: pages, BytesCopied: pages * 4096}
	const workers = 8
	prev := m.CheckpointContended(Full, counts, workers, 1).Total()
	for _, conc := range []int{2, 4, 8, 16} {
		cur := m.CheckpointContended(Full, counts, workers, conc).Total()
		if cur < prev {
			t.Fatalf("contended pause shrank at concurrency %d: %v < %v", conc, cur, prev)
		}
		prev = cur
	}
	// Pool fully divided (8 VMs on 8 workers) == each running serial.
	serial := m.CheckpointParallel(Full, counts, 1).Total()
	if got := m.CheckpointContended(Full, counts, workers, workers).Total(); got != serial {
		t.Fatalf("fully divided pool %v != serial %v", got, serial)
	}
	// Oversubscribed (16 VMs on 8 workers) must exceed the serial floor.
	if got := m.CheckpointContended(Full, counts, workers, 16).Total(); got <= serial {
		t.Fatalf("oversubscribed pause %v not above serial floor %v", got, serial)
	}
}

func TestScanCacheOverheadPricing(t *testing.T) {
	m := Default()

	if got := m.ScanCacheOverhead(ScanCacheCounts{}); got != 0 {
		t.Fatalf("zero counts priced at %v, want 0", got)
	}

	// The uncached baseline maps and unmaps every touched page each
	// epoch; the cached steady state pays hits plus a handful of misses
	// for the dirtied pages. Cached must price strictly cheaper.
	pages := 200
	uncached := m.ScanCacheOverhead(ScanCacheCounts{
		CacheMisses: pages,
		CacheUnmaps: pages,
	})
	cached := m.ScanCacheOverhead(ScanCacheCounts{
		CacheHits:   pages - 10,
		CacheMisses: 10,
		CacheUnmaps: 10,
		CacheSwept:  pages,
		MemoHits:    4,
	})
	if cached >= uncached {
		t.Fatalf("cached overhead %v >= uncached %v", cached, uncached)
	}

	// A miss prices exactly one MapPage; a drop exactly one UnmapPage.
	one := m.ScanCacheOverhead(ScanCacheCounts{CacheMisses: 1, CacheUnmaps: 1})
	if want := ns(m.MapPageNs + m.UnmapPageNs); one != want {
		t.Fatalf("miss+unmap priced at %v, want %v", one, want)
	}
}

func TestScanCacheCountsAdd(t *testing.T) {
	a := ScanCacheCounts{CacheHits: 1, CacheMisses: 2, CacheUnmaps: 3, CacheSwept: 4, MemoHits: 5, MemoMisses: 6}
	b := a
	b.Add(a)
	want := ScanCacheCounts{CacheHits: 2, CacheMisses: 4, CacheUnmaps: 6, CacheSwept: 8, MemoHits: 10, MemoMisses: 12}
	if b != want {
		t.Fatalf("Add = %+v, want %+v", b, want)
	}
}
