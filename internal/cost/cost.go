// Package cost prices checkpoint and scan operations in virtual time.
//
// Macro experiments (normalized runtimes, pause-time breakdowns, web
// latency sweeps) cannot reproduce the paper's absolute numbers off its
// Xeon X5650 testbed, so they run on a virtual clock: workloads really
// execute against guest memory (producing real dirty-page and byte
// counts), and this package converts those counts into phase durations
// using constants calibrated against the paper's Table 1, Figure 4 and
// Table 3. Shapes (who wins, by what factor, where crossovers fall)
// derive from the real operation counts.
package cost

import "time"

// Model holds the calibrated cost constants. All "...Ns" values are
// nanoseconds; byte costs are fractional nanoseconds per byte.
type Model struct {
	// Domain pause/unpause transitions (Table 1: suspend ~1 ms,
	// resume ~1.5 ms).
	SuspendNs float64
	ResumeNs  float64

	// VMI memory analysis per checkpoint (Table 3: under 2 ms; the
	// paper's no-op scan measures ~0.34 ms).
	VMIScanBaseNs float64
	VMIPerNodeNs  float64
	// CanaryCheckNs prices one canary validation (§5.5: "our scanner
	// can validate 90,000 canaries per millisecond" — ~11 ns each).
	CanaryCheckNs float64

	// Dirty bitmap scan (Optimization 3). Bit-by-bit cost scales with
	// total VM pages; word scan scales with words plus dirty pages.
	BitScanPerPageNs   float64
	WordScanPerWordNs  float64
	WordScanPerDirtyNs float64

	// Page table mapping (Optimization 2). Per-page map/unmap
	// hypercalls plus PFN-to-MFN conversions.
	MapPageNs   float64
	UnmapPageNs float64

	// Copy path (Optimization 1). The Remus path serializes dirty
	// pages through writev over an ssh-encrypted socket; the CRIMES
	// path memcpys into the premapped backup frames. The socket path
	// saturates: beyond SocketSatBytes per epoch the effective per-byte
	// cost grows linearly (TCP backpressure plus encryption CPU
	// contention with the guest).
	SocketByteNs       float64
	SocketSatBytes     float64
	SocketEpochNs      float64 // fixed per-epoch writev/ssh overhead
	MemcpyByteNs       float64
	DirtyHarvestCallNs float64

	// VMI setup phases (Table 3), paid once, not per checkpoint.
	VMIInitNs       float64
	VMIPreprocessNs float64

	// Volatility phases (§5.3): init ~2.5 s, process scan ~500 ms,
	// process memory dump ~5 s (§5.5).
	VolatilityInitNs   float64
	VolatilityScanNs   float64
	VolatilityDumpNs   float64
	CheckpointToDiskNs float64 // writing full checkpoints to disk, "tens of seconds"

	// AddressSanitizer inline instrumentation: multiplies workload
	// execution time (paper: +40-60 %). Per-workload factors scale this.
	ASanBaseFactor float64

	// Scan-path cache (cached, incremental VMI). A cache miss prices a
	// MapPageNs foreign map and every cache drop (eviction,
	// invalidation, flush) an UnmapPageNs, reusing the mapping constants
	// above; the constants here price the bookkeeping that is unique to
	// the cache. None of them is consulted unless the scan cache is
	// enabled, so the cache-off configuration reproduces existing
	// numbers bit-for-bit (mirroring how Workers=1 reproduces Table 1).
	ScanCacheHitNs   float64 // LRU lookup + bump for a cached page
	ScanSweepEntryNs float64 // per cached entry examined by an invalidation sweep
	ScanMemoHitNs    float64 // returning one memoized structure walk

	// Copy-on-write commit path. Arming write protection on the dirty
	// set replaces copying it under pause: one batched event-config
	// hypercall (CowArmBaseNs) plus an EPT permission flip per page
	// (CowArmPageNs, ~27x cheaper than memcpying the page). Each write
	// fault the guest then takes on a protected page costs a VM exit
	// plus an eager copy-before-write (CowFaultNs), charged to guest
	// execution time rather than the pause window. None of these is
	// consulted unless CoW is enabled, so the CoW-off configuration
	// reproduces existing numbers bit-for-bit.
	CowArmBaseNs float64
	CowArmPageNs float64
	CowFaultNs   float64

	// Delta replication (v2 wire protocol). Every page carried by a
	// delta-mode conduit is content-hashed (DeltaHashPageNs) and, when a
	// last-shipped base exists, run through the XOR/run-length encoder
	// (DeltaEncodeByteNs per page byte). The CPU spent is charged
	// against the socket bytes saved, so the tradeoff is visible in
	// virtual time. Neither constant is consulted in raw mode, so the
	// raw configuration reproduces existing numbers bit-for-bit.
	DeltaHashPageNs   float64
	DeltaEncodeByteNs float64

	// Multi-host cluster path. A VM whose Remus replica is anti-affine
	// on another host ships its dirty pages over the inter-host link
	// (CrossHostByteNs per byte, slower than the local socket) and pays
	// one link round trip per epoch for the replica's acknowledgement
	// (CrossHostRTTNs). A host failover pays PromoteBaseNs once per
	// affected VM (detection, replica adoption, controller re-init),
	// and ring-membership churn pays RebalancePageNs per page moved to
	// its new home. None of these is consulted unless the cluster runs
	// more than one host, so single-host configurations reproduce
	// existing numbers bit-for-bit.
	CrossHostByteNs float64
	CrossHostRTTNs  float64
	PromoteBaseNs   float64
	RebalancePageNs float64

	// Parallel pause path. Sharded copy/scan workers obey Amdahl's law:
	// WorkerSerialFrac is the fraction of each parallelized phase that
	// stays serial (shard dispatch, cache-line and memory-bus
	// contention), and WorkerSpawnNs is the per-worker fork/join cost
	// added to every parallelized phase. Workers=1 bypasses both, so
	// single-worker pricing is bit-identical to Checkpoint's.
	WorkerSerialFrac float64
	WorkerSpawnNs    float64
}

// Default returns the model calibrated to the paper's reported
// component costs.
func Default() Model {
	return Model{
		SuspendNs: 1.0e6,
		ResumeNs:  1.5e6,

		VMIScanBaseNs: 3.0e5,
		VMIPerNodeNs:  2.0e3,
		CanaryCheckNs: 11,

		BitScanPerPageNs:   10,
		WordScanPerWordNs:  30,
		WordScanPerDirtyNs: 10,

		MapPageNs:   1.0e3,
		UnmapPageNs: 3.0e2,

		SocketByteNs:       2.4,
		SocketSatBytes:     128 << 20,
		SocketEpochNs:      3.0e5,
		MemcpyByteNs:       0.8,
		DirtyHarvestCallNs: 5.0e4,

		VMIInitNs:       67.096e6,
		VMIPreprocessNs: 53.678e6,

		VolatilityInitNs:   2.5e9,
		VolatilityScanNs:   5.0e8,
		VolatilityDumpNs:   5.0e9,
		CheckpointToDiskNs: 30e9,

		ASanBaseFactor: 1.5,

		ScanCacheHitNs:   25,
		ScanSweepEntryNs: 15,
		ScanMemoHitNs:    150,

		CowArmBaseNs: 5.0e4,
		CowArmPageNs: 120,
		CowFaultNs:   8.0e3,

		DeltaHashPageNs:   400,
		DeltaEncodeByteNs: 0.5,

		CrossHostByteNs: 3.2,
		CrossHostRTTNs:  2.0e5,
		PromoteBaseNs:   5.0e7,
		RebalancePageNs: 1.31e4,

		WorkerSerialFrac: 0.05,
		WorkerSpawnNs:    2.0e4,
	}
}

// Optimization selects which of CRIMES' checkpointing optimizations are
// active, matching the paper's evaluation variants.
type Optimization int

// Optimization levels, cumulative as in §5.2.
const (
	// NoOpt is Remus modified to run a VMI scan: socket copy, per-epoch
	// mapping, bit-by-bit scan.
	NoOpt Optimization = iota + 1
	// Memcpy adds the local in-memory copy (Optimization 1).
	Memcpy
	// Premap adds the global one-time PFN-to-MFN mapping (Optimization 2).
	Premap
	// Full adds the word-granularity dirty scan (Optimization 3).
	Full
)

// String renders the optimization level.
func (o Optimization) String() string {
	switch o {
	case NoOpt:
		return "No-opt"
	case Memcpy:
		return "Memcpy"
	case Premap:
		return "Pre-map"
	case Full:
		return "Full"
	default:
		return "unknown"
	}
}

// Counts are the real operation counts one checkpoint produced.
type Counts struct {
	TotalPages  int
	DirtyPages  int
	BytesCopied int
	VMINodes    int // kernel list nodes the audit walked
	Canaries    int // canaries validated by the audit
	DiskBlocks  int // dirty disk blocks replicated (disk extension)
	RemotePages int // pages also shipped to a remote backup (HA extension)

	// LocalRepl and RemoteRepl carry the v2 replication wire protocol's
	// per-epoch traffic for the local conduit and the remote HA conduit
	// respectively. Both stay zero in raw mode, in which case the
	// classic socket pricing above applies unchanged.
	LocalRepl  ReplicationCounts
	RemoteRepl ReplicationCounts
}

// ReplicationCounts are the real wire-protocol counts one epoch's
// delta-mode replication produced (mirroring remus.StreamStats, carried
// here so pricing needs no dependency on the wire package).
type ReplicationCounts struct {
	Batches      int   // checkpoint batches sent
	Pages        int   // pages carried (each one content-hashed)
	RawPages     int   // full raw records
	DeltaPages   int   // XOR-delta records
	SamePages    int   // unchanged-page references
	DupPages     int   // cross-page duplicate references
	ZeroPages    int   // zero-page references
	EncodedPages int   // pages run through the XOR encoder (deltas + raw fallbacks)
	WireBytes    int64 // bytes actually on the wire
	RawBytes     int64 // bytes the v1 raw protocol would have shipped
}

// Add accumulates another counter set into r.
func (r *ReplicationCounts) Add(o ReplicationCounts) {
	r.Batches += o.Batches
	r.Pages += o.Pages
	r.RawPages += o.RawPages
	r.DeltaPages += o.DeltaPages
	r.SamePages += o.SamePages
	r.DupPages += o.DupPages
	r.ZeroPages += o.ZeroPages
	r.EncodedPages += o.EncodedPages
	r.WireBytes += o.WireBytes
	r.RawBytes += o.RawBytes
}

// Reduction is the fraction of raw bytes the wire protocol saved
// (0 when nothing was shipped).
func (r ReplicationCounts) Reduction() float64 {
	if r.RawBytes == 0 {
		return 0
	}
	return 1 - float64(r.WireBytes)/float64(r.RawBytes)
}

// ReplicateDelta prices one epoch's delta-mode replication: the socket
// path over the bytes actually on the wire (same saturating formula as
// the raw path) plus the protocol's CPU — a content hash per carried
// page and the XOR encoder over every page that had a base. Small-write
// workloads trade a few hundred ns/page of hashing for thousands of
// ns/page of socket and encryption time.
func (m Model) ReplicateDelta(r ReplicationCounts) time.Duration {
	bytes := float64(r.WireBytes)
	factor := 1 + bytes/m.SocketSatBytes
	return ns(m.SocketEpochNs*float64(r.Batches) +
		m.SocketByteNs*bytes*factor +
		m.DeltaHashPageNs*float64(r.Pages) +
		m.DeltaEncodeByteNs*4096*float64(r.EncodedPages))
}

// Phases is the virtual-time breakdown of one checkpoint's paused
// interval, mirroring the paper's suspend/vmi/bitscan/map/copy/resume
// rows (Table 1, Figure 4).
type Phases struct {
	Suspend time.Duration
	VMI     time.Duration
	Bitscan time.Duration
	Map     time.Duration
	Copy    time.Duration
	Resume  time.Duration
}

// Total is the full paused time.
func (p Phases) Total() time.Duration {
	return p.Suspend + p.VMI + p.Bitscan + p.Map + p.Copy + p.Resume
}

// Checkpoint prices one checkpoint at a given optimization level.
func (m Model) Checkpoint(opt Optimization, c Counts) Phases {
	var p Phases
	p.Suspend = ns(m.SuspendNs)
	p.Resume = ns(m.ResumeNs)
	p.VMI = ns(m.VMIScanBaseNs + m.VMIPerNodeNs*float64(c.VMINodes) + m.CanaryCheckNs*float64(c.Canaries))

	if opt >= Full {
		words := (c.TotalPages + 63) / 64
		p.Bitscan = ns(m.WordScanPerWordNs*float64(words) + m.WordScanPerDirtyNs*float64(c.DirtyPages))
	} else {
		p.Bitscan = ns(m.BitScanPerPageNs * float64(c.TotalPages))
	}

	switch {
	case opt >= Premap:
		// Global mapping established once at startup; per-epoch map
		// cost is only the dirty-bitmap harvest hypercall.
		p.Map = ns(m.DirtyHarvestCallNs)
	case opt == Memcpy:
		// Maps both the primary and the backup VM's pages each epoch.
		perPage := m.MapPageNs + m.UnmapPageNs
		p.Map = ns(2*perPage*float64(c.DirtyPages) + m.DirtyHarvestCallNs)
	default:
		perPage := m.MapPageNs + m.UnmapPageNs
		p.Map = ns(perPage*float64(c.DirtyPages) + m.DirtyHarvestCallNs)
	}

	switch {
	case opt >= Memcpy:
		p.Copy = ns(m.MemcpyByteNs * float64(c.BytesCopied))
	case c.LocalRepl.Batches > 0:
		// Delta-mode socket path: priced by the bytes actually shipped
		// plus the hash/encode CPU. Disk bytes still travel raw (the
		// conduit only carries memory pages), so any byte count beyond
		// the dirty pages keeps the classic socket cost.
		p.Copy = m.ReplicateDelta(c.LocalRepl)
		if extra := c.BytesCopied - c.DirtyPages*4096; extra > 0 {
			b := float64(extra)
			p.Copy += ns(m.SocketByteNs * b * (1 + b/m.SocketSatBytes))
		}
	default:
		bytes := float64(c.BytesCopied)
		factor := 1 + bytes/m.SocketSatBytes
		p.Copy = ns(m.SocketEpochNs + m.SocketByteNs*bytes*factor)
	}
	if c.RemotePages > 0 {
		if c.RemoteRepl.Batches > 0 {
			// Delta-mode remote ship: pay for the wire bytes it used.
			p.Copy += m.ReplicateDelta(c.RemoteRepl)
		} else {
			// Remote HA replication always pays the socket path, whatever
			// the local optimization level.
			bytes := float64(c.RemotePages) * 4096
			factor := 1 + bytes/m.SocketSatBytes
			p.Copy += ns(m.SocketEpochNs + m.SocketByteNs*bytes*factor)
		}
	}
	return p
}

// Speedup is the Amdahl-law speedup the model predicts for a
// parallelized phase at the given worker count.
func (m Model) Speedup(workers int) float64 {
	if workers <= 1 {
		return 1
	}
	return 1 / (m.WorkerSerialFrac + (1-m.WorkerSerialFrac)/float64(workers))
}

// CheckpointParallel prices one checkpoint executed by a sharded worker
// pool (the parallel pause path). workers <= 1 delegates to Checkpoint
// exactly, preserving the paper's Table 1 / Figure 3 / Figure 4 shapes.
// With workers > 1:
//
//   - the copy phase (undo capture + page copy, memcpy paths) and the
//     Full level's word-granularity bitmap scan are divided by the
//     Amdahl speedup, plus a per-worker fork/join cost;
//   - the remote HA ship leaves the pause window entirely: it is
//     pipelined behind the resumed guest with a bounded in-flight
//     window, so RemotePages contribute nothing to the pause;
//   - suspend, resume, per-epoch mapping, and the VMI audit base are
//     unchanged (module-level audit concurrency is priced separately
//     by the caller when it knows the module count).
//
// The socket copy path (No-opt) is inherently serial and is never
// scaled.
func (m Model) CheckpointParallel(opt Optimization, c Counts, workers int) Phases {
	if workers <= 1 {
		return m.Checkpoint(opt, c)
	}
	local := c
	local.RemotePages = 0
	p := m.Checkpoint(opt, local)
	speedup := m.Speedup(workers)
	spawn := ns(m.WorkerSpawnNs * float64(workers))
	if opt >= Full {
		p.Bitscan = time.Duration(float64(p.Bitscan)/speedup) + spawn
	}
	if opt >= Memcpy {
		p.Copy = time.Duration(float64(p.Copy)/speedup) + spawn
	}
	return p
}

// CheckpointContended prices one VM's checkpoint when it shares the
// host's pause-path worker pool with other co-located VMs. concurrent
// is the number of VMs inside overlapping pause windows — the fleet
// scheduler's K bound under staggered scheduling, or the whole fleet
// when epoch boundaries are synchronized. The pool divides evenly:
// each VM's parallelizable phases run with workers/concurrent workers
// (at least one), and when more VMs contend than there are workers the
// excess pause windows serialize, scaling the pool-sharded phases
// (bitmap scan and copy) by concurrent/workers. concurrent <= 1
// delegates to CheckpointParallel exactly, so a fleet of one VM prices
// byte-for-byte like the single-VM pause path.
func (m Model) CheckpointContended(opt Optimization, c Counts, workers, concurrent int) Phases {
	if concurrent <= 1 {
		return m.CheckpointParallel(opt, c, workers)
	}
	if workers < 1 {
		workers = 1
	}
	eff := workers / concurrent
	if eff < 1 {
		eff = 1
	}
	p := m.CheckpointParallel(opt, c, eff)
	if concurrent > workers {
		queue := float64(concurrent) / float64(workers)
		p.Bitscan = time.Duration(float64(p.Bitscan) * queue)
		p.Copy = time.Duration(float64(p.Copy) * queue)
	}
	return p
}

// ReplicateCrossHost prices shipping one epoch's dirty pages to an
// anti-affine replica on another host: the inter-host link's per-byte
// cost plus one round trip for the replica's acknowledgement. With
// hosts <= 1 there is no other host to ship to and the cost is zero.
func (m Model) ReplicateCrossHost(pages, hosts int) time.Duration {
	if hosts <= 1 || pages <= 0 {
		return 0
	}
	return ns(m.CrossHostRTTNs + m.CrossHostByteNs*float64(pages)*4096)
}

// CheckpointCluster prices one VM's checkpoint in an H-host cluster
// whose replica placement is anti-affine. hosts <= 1 delegates to
// CheckpointContended exactly — a single host has nowhere anti-affine
// to put replicas, so single-host cluster numbers reproduce the fleet's
// bit-for-bit. With more hosts, the Remus-style cross-host commit
// extends the copy phase: the epoch's dirty pages go over the
// inter-host link and the pause holds until the replica acknowledges.
func (m Model) CheckpointCluster(opt Optimization, c Counts, workers, concurrent, hosts int) Phases {
	p := m.CheckpointContended(opt, c, workers, concurrent)
	if hosts <= 1 {
		return p
	}
	p.Copy += m.ReplicateCrossHost(c.DirtyPages, hosts)
	return p
}

// Promote prices one VM's failover after its host dies: the fixed
// promotion cost (failure detection amortized per VM, replica adoption,
// controller re-initialization) plus a full cross-host resync to re-arm
// a fresh anti-affine replica elsewhere.
func (m Model) Promote(guestPages, hosts int) time.Duration {
	d := ns(m.PromoteBaseNs)
	if hosts > 1 {
		d += m.ReplicateCrossHost(guestPages, hosts)
	}
	return d
}

// RebalanceChurn prices ring-membership churn: every page whose VM
// moved to a new home host when a host joined or left must cross the
// inter-host link once.
func (m Model) RebalanceChurn(pagesMoved int) time.Duration {
	if pagesMoved <= 0 {
		return 0
	}
	return ns(m.RebalancePageNs * float64(pagesMoved))
}

// ScanCacheCounts are the real scan-path cache operation counts one
// epoch's audit produced: page-cache traffic from hv.CachedMapping and
// walk-memo traffic from vmi.WalkMemo.
type ScanCacheCounts struct {
	CacheHits   int // page reads served by a live mapping
	CacheMisses int // page reads that performed a MapPage
	CacheUnmaps int // mappings dropped (evicted, invalidated, or flushed)
	CacheSwept  int // cached entries examined by invalidation sweeps
	MemoHits    int // structure walks answered from the memo
	MemoMisses  int // structure walks that ran against guest memory
}

// Add accumulates another counter set into s.
func (s *ScanCacheCounts) Add(o ScanCacheCounts) {
	s.CacheHits += o.CacheHits
	s.CacheMisses += o.CacheMisses
	s.CacheUnmaps += o.CacheUnmaps
	s.CacheSwept += o.CacheSwept
	s.MemoHits += o.MemoHits
	s.MemoMisses += o.MemoMisses
}

// ScanCacheOverhead prices one epoch's scan-path cache traffic: the
// map/unmap hypercalls the cache actually performed plus its lookup,
// sweep, and memo bookkeeping. The caller adds this to the VMI phase
// when (and only when) the scan cache is enabled; the base VMI term
// already shrinks on memo hits because memoized walks report zero nodes
// walked. The uncached configuration — every touched page mapped and
// unmapped again each epoch — is priced by the same formula, since
// there every read is a miss and every mapping is flushed.
func (m Model) ScanCacheOverhead(s ScanCacheCounts) time.Duration {
	return ns(m.MapPageNs*float64(s.CacheMisses) +
		m.UnmapPageNs*float64(s.CacheUnmaps) +
		m.ScanCacheHitNs*float64(s.CacheHits) +
		m.ScanSweepEntryNs*float64(s.CacheSwept) +
		m.ScanMemoHitNs*float64(s.MemoHits))
}

// CoWCounts are the real copy-on-write commit counts one epoch
// produced. All three are deterministic functions of the guest's
// behavior — the background copier's racy eager/lazy split never
// appears here, so CoW pricing is reproducible run to run.
type CoWCounts struct {
	ArmedPages  int // dirty pages write-protected at this commit
	WriteFaults int // write faults taken on armed pages since the previous commit
	DrainPages  int // previous commit's armed pages settled lazily (armed - faulted)
}

// Add accumulates another counter set into c.
func (c *CoWCounts) Add(o CoWCounts) {
	c.ArmedPages += o.ArmedPages
	c.WriteFaults += o.WriteFaults
	c.DrainPages += o.DrainPages
}

// CheckpointCoW prices one copy-on-write commit: the pause window plus
// the guest-visible overhead charged to epoch execution time.
//
// Under CoW the dirty memory pages are not copied while the guest is
// frozen — the pause pays only write-protection arming (one batched
// hypercall plus a per-page permission flip), so the copy phase loses
// its O(dirty bytes) memcpy term and pause grows sublinearly in the
// working set. Disk blocks are still committed eagerly under pause, so
// their bytes stay in the copy phase. The pages are copied into the
// backup behind the resumed guest: lazy copies overlap the next epoch's
// execution and only their excess beyond the epoch interval extends the
// pause (the next commit must wait for convergence), while each eager
// copy-before-write costs the guest a write-fault VM exit, returned as
// overhead for the caller to charge to the virtual clock.
func (m Model) CheckpointCoW(opt Optimization, c Counts, workers int, cw CoWCounts, epoch time.Duration) (Phases, time.Duration) {
	local := c
	local.BytesCopied -= cw.ArmedPages * 4096
	if local.BytesCopied < 0 {
		local.BytesCopied = 0
	}
	p := m.CheckpointParallel(opt, local, workers)
	p.Copy += ns(m.CowArmBaseNs + m.CowArmPageNs*float64(cw.ArmedPages))
	if lazy := ns(m.MemcpyByteNs * float64(cw.DrainPages) * 4096); lazy > epoch {
		p.Copy += lazy - epoch
	}
	overhead := ns(m.CowFaultNs * float64(cw.WriteFaults))
	return p, overhead
}

// PremapStartup prices the one-time global mapping for Premap/Full.
func (m Model) PremapStartup(totalPages int) time.Duration {
	return ns((m.MapPageNs + m.UnmapPageNs) * float64(totalPages))
}

// BitmapScan prices a standalone dirty-bitmap scan (Figure 6b's
// simulated scan cost versus VM size).
func (m Model) BitmapScan(totalPages, dirtyPages int, optimized bool) time.Duration {
	if optimized {
		words := (totalPages + 63) / 64
		return ns(m.WordScanPerWordNs*float64(words) + m.WordScanPerDirtyNs*float64(dirtyPages))
	}
	return ns(m.BitScanPerPageNs * float64(totalPages))
}

func ns(v float64) time.Duration { return time.Duration(v) }
