package cost

import (
	"testing"
	"time"
)

// With zero CoW counters the CoW pricing collapses to the eager
// parallel commit plus only the fixed arm-hypercall base — no per-page
// terms, no fault overhead.
func TestCheckpointCoWZeroCountsMatchesEager(t *testing.T) {
	m := Default()
	c := swaptionsCounts()
	eager := m.CheckpointParallel(Full, c, 4)
	cow, overhead := m.CheckpointCoW(Full, c, 4, CoWCounts{}, 200*time.Millisecond)
	if overhead != 0 {
		t.Fatalf("fault overhead = %v with zero faults, want 0", overhead)
	}
	if got, want := cow.Total()-eager.Total(), ns(m.CowArmBaseNs); got != want {
		t.Fatalf("zero-count CoW pause differs from eager by %v, want just the arm base %v", got, want)
	}
}

// Arming every dirty page removes the O(dirty bytes) memcpy from the
// pause: the CoW pause must undercut the eager pause at the Figure 4
// working set, and the delta must be the memcpy term minus the arm
// cost.
func TestCheckpointCoWRemovesCopyFromPause(t *testing.T) {
	m := Default()
	c := swaptionsCounts()
	cw := CoWCounts{ArmedPages: c.DirtyPages}
	eager := m.CheckpointParallel(Full, c, 1)
	cow, _ := m.CheckpointCoW(Full, c, 1, cw, 200*time.Millisecond)
	if cow.Total() >= eager.Total() {
		t.Fatalf("CoW pause %v not below eager %v with all pages armed", cow.Total(), eager.Total())
	}
	saved := eager.Copy - cow.Copy
	memcpy := ns(m.MemcpyByteNs * float64(c.BytesCopied))
	arm := ns(m.CowArmBaseNs + m.CowArmPageNs*float64(cw.ArmedPages))
	if got, want := saved, memcpy-arm; got != want {
		t.Fatalf("copy-phase saving = %v, want memcpy %v - arm %v = %v", got, memcpy, arm, want)
	}
}

// The armed-page credit clamps at zero: arming more pages than were
// counted as copied must not drive BytesCopied negative and price a
// cheaper-than-free copy phase.
func TestCheckpointCoWClampsBytes(t *testing.T) {
	m := Default()
	c := Counts{TotalPages: 1024, DirtyPages: 4, BytesCopied: 4 * 4096}
	cw := CoWCounts{ArmedPages: 100}
	local := c
	local.BytesCopied = 0
	base := m.CheckpointParallel(Premap, local, 1)
	cow, _ := m.CheckpointCoW(Premap, c, 1, cw, time.Second)
	arm := ns(m.CowArmBaseNs + m.CowArmPageNs*float64(cw.ArmedPages))
	if got, want := cow.Copy, base.Copy+arm; got != want {
		t.Fatalf("over-armed copy phase = %v, want clamp at %v", got, want)
	}
}

// Lazy drain is free while it fits inside the epoch interval; only the
// excess extends the next pause.
func TestCheckpointCoWLazyDrainExcess(t *testing.T) {
	m := Default()
	c := Counts{TotalPages: 1 << 18, DirtyPages: 1000, BytesCopied: 1000 * 4096}
	cw := CoWCounts{ArmedPages: 1000, DrainPages: 1000}
	lazy := ns(m.MemcpyByteNs * float64(cw.DrainPages) * 4096)

	fits, _ := m.CheckpointCoW(Full, c, 1, cw, 2*lazy)
	hidden, _ := m.CheckpointCoW(Full, c, 1, CoWCounts{ArmedPages: 1000}, 2*lazy)
	if fits.Copy != hidden.Copy {
		t.Fatalf("drain inside the epoch extended the pause: %v vs %v", fits.Copy, hidden.Copy)
	}

	epoch := lazy / 4
	spills, _ := m.CheckpointCoW(Full, c, 1, cw, epoch)
	if got, want := spills.Copy-fits.Copy, lazy-epoch; got != want {
		t.Fatalf("drain excess charged %v, want lazy %v - epoch %v = %v", got, lazy, epoch, want)
	}
}

// Fault overhead is linear in the fault count, charged to guest time —
// it never appears in the pause phases.
func TestCheckpointCoWFaultOverhead(t *testing.T) {
	m := Default()
	c := swaptionsCounts()
	quiet, none := m.CheckpointCoW(Full, c, 4, CoWCounts{ArmedPages: 10}, 200*time.Millisecond)
	noisy, some := m.CheckpointCoW(Full, c, 4, CoWCounts{ArmedPages: 10, WriteFaults: 750}, 200*time.Millisecond)
	if none != 0 {
		t.Fatalf("overhead = %v with zero faults", none)
	}
	if got, want := some, ns(m.CowFaultNs*750); got != want {
		t.Fatalf("fault overhead = %v, want %v", got, want)
	}
	if quiet.Total() != noisy.Total() {
		t.Fatalf("write faults leaked into the pause: %v vs %v", quiet.Total(), noisy.Total())
	}
}

func TestCoWCountsAdd(t *testing.T) {
	var c CoWCounts
	c.Add(CoWCounts{ArmedPages: 1, WriteFaults: 2, DrainPages: 3})
	c.Add(CoWCounts{ArmedPages: 10, WriteFaults: 20, DrainPages: 30})
	if c != (CoWCounts{ArmedPages: 11, WriteFaults: 22, DrainPages: 33}) {
		t.Fatalf("Add = %+v", c)
	}
}
