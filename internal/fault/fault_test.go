package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if err := in.Check("hv.map"); err != nil {
		t.Fatalf("nil injector Check = %v", err)
	}
	in.Fail("hv.map", 1, 1, false)
	in.FailNext("hv.map", 1, true)
	in.Reset()
	if in.Calls("hv.map") != 0 || in.Tripped("hv.map") != 0 {
		t.Fatal("nil injector reported activity")
	}
}

func TestFailNthOccurrence(t *testing.T) {
	in := NewInjector()
	in.FailNth("hv.map", 3)
	for i := 1; i <= 5; i++ {
		err := in.Check("hv.map")
		if i == 3 {
			if err == nil {
				t.Fatal("occurrence 3 did not fail")
			}
			if IsTransient(err) {
				t.Fatal("FailNth produced a transient error")
			}
			if !IsInjected(err) {
				t.Fatal("injected error not recognized")
			}
			var fe *Error
			if !errors.As(err, &fe) || fe.Site != "hv.map" || fe.N != 3 {
				t.Fatalf("error = %+v", fe)
			}
			continue
		}
		if err != nil {
			t.Fatalf("occurrence %d failed: %v", i, err)
		}
	}
	if in.Calls("hv.map") != 5 || in.Tripped("hv.map") != 1 {
		t.Fatalf("calls=%d tripped=%d", in.Calls("hv.map"), in.Tripped("hv.map"))
	}
}

func TestTransientWindow(t *testing.T) {
	in := NewInjector()
	in.Fail("remus.send", 2, 3, true)
	var failed int
	for i := 1; i <= 6; i++ {
		if err := in.Check("remus.send"); err != nil {
			failed++
			if !IsTransient(err) {
				t.Fatalf("occurrence %d: expected transient, got %v", i, err)
			}
		}
	}
	if failed != 3 {
		t.Fatalf("failed %d times, want 3", failed)
	}
}

func TestFailNextUsesCurrentCount(t *testing.T) {
	in := NewInjector()
	for i := 0; i < 7; i++ {
		if err := in.Check("vdisk.copy"); err != nil {
			t.Fatalf("unscheduled failure: %v", err)
		}
	}
	in.FailNext("vdisk.copy", 1, false)
	if err := in.Check("vdisk.copy"); err == nil {
		t.Fatal("next occurrence did not fail")
	}
	if err := in.Check("vdisk.copy"); err != nil {
		t.Fatalf("occurrence after window failed: %v", err)
	}
}

func TestMarkTransient(t *testing.T) {
	base := errors.New("socket reset")
	err := MarkTransient(base)
	if !IsTransient(err) {
		t.Fatal("marked error not transient")
	}
	if !errors.Is(err, base) {
		t.Fatal("marked error lost its cause")
	}
	if IsInjected(err) {
		t.Fatal("marked error reported as injected")
	}
	wrapped := fmt.Errorf("commit: %w", err)
	if !IsTransient(wrapped) {
		t.Fatal("wrapping lost transience")
	}
	if MarkTransient(nil) != nil {
		t.Fatal("MarkTransient(nil) != nil")
	}
}

func TestResetClearsSchedules(t *testing.T) {
	in := NewInjector()
	in.FailNth("hv.pause", 1)
	in.Reset()
	if err := in.Check("hv.pause"); err != nil {
		t.Fatalf("schedule survived reset: %v", err)
	}
}

func TestConcurrentChecks(t *testing.T) {
	in := NewInjector()
	in.Fail("hv.harvest", 1, 50, true)
	done := make(chan int)
	for g := 0; g < 4; g++ {
		go func() {
			n := 0
			for i := 0; i < 100; i++ {
				if in.Check("hv.harvest") != nil {
					n++
				}
			}
			done <- n
		}()
	}
	total := 0
	for g := 0; g < 4; g++ {
		total += <-done
	}
	if total != 50 {
		t.Fatalf("tripped %d times, want 50", total)
	}
	if in.Calls("hv.harvest") != 400 {
		t.Fatalf("calls = %d, want 400", in.Calls("hv.harvest"))
	}
}
