// Package fault provides deterministic fault injection for the
// hypervisor substrate and an error taxonomy separating transient from
// fatal failures. An Injector is armed with per-site schedules ("fail
// the Nth map hypercall", "fail conduit sends 4 through 6 transiently")
// and instrumented operations consult it before executing. The CRIMES
// controller uses the taxonomy to decide between bounded retry
// (transient) and unwinding to a consistent state (fatal), and the test
// suite uses the injector to prove that no error path strands a domain
// in a paused state.
//
// Sites are plain strings, conventionally "<package>.<operation>"
// (e.g. "hv.map", "remus.send", "vdisk.copy"); each instrumented
// package exports constants for its sites. Sites may carry an instance
// suffix when one operation exists per object rather than per package:
// the cluster control plane's host heartbeat is checked at
// "cluster.hostalive.<host>", one occurrence per scheduling round, so a
// fatal failure scheduled at occurrence N kills that host at round N.
package fault

import (
	"errors"
	"fmt"
	"sync"
)

// ErrInjected is the sentinel wrapped by every injected failure, so
// callers can distinguish injected faults from organic ones.
var ErrInjected = errors.New("fault: injected failure")

// Error is an injected failure at a specific occurrence of a site.
type Error struct {
	// Site is the instrumented operation that failed.
	Site string
	// N is the 1-based occurrence of the operation that failed.
	N int
	// IsTransient marks failures that are expected to succeed when the
	// operation is retried (e.g. a dropped conduit packet), as opposed
	// to fatal failures (e.g. a destroyed backup domain).
	IsTransient bool
}

// Error renders the injected failure.
func (e *Error) Error() string {
	kind := "fatal"
	if e.IsTransient {
		kind = "transient"
	}
	return fmt.Sprintf("%s failure injected at %s (occurrence %d): %v", kind, e.Site, e.N, ErrInjected)
}

// Unwrap exposes the ErrInjected sentinel.
func (e *Error) Unwrap() error { return ErrInjected }

// transientError marks an arbitrary error as transient (retryable).
type transientError struct{ err error }

func (t *transientError) Error() string { return t.err.Error() }
func (t *transientError) Unwrap() error { return t.err }

// MarkTransient wraps err so IsTransient reports true for it. It is the
// hook for organic (non-injected) errors that are known to be
// retryable.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// IsTransient reports whether err is a transient failure that a caller
// may retry with bounded backoff. Fatal failures — everything else —
// require unwinding instead.
func IsTransient(err error) bool {
	var fe *Error
	if errors.As(err, &fe) {
		return fe.IsTransient
	}
	var te *transientError
	return errors.As(err, &te)
}

// IsInjected reports whether err originated from an Injector.
func IsInjected(err error) bool { return errors.Is(err, ErrInjected) }

// plan schedules failures for occurrences in [from, to] of one site.
type plan struct {
	from, to  int
	transient bool
}

type site struct {
	calls   int
	tripped int
	plans   []plan
}

// Injector deterministically fails scheduled occurrences of named
// operations. The zero value and the nil injector are inert: Check
// always returns nil. An Injector is safe for concurrent use.
type Injector struct {
	mu    sync.Mutex
	sites map[string]*site
}

// NewInjector returns an empty (inert) injector.
func NewInjector() *Injector {
	return &Injector{sites: make(map[string]*site)}
}

func (in *Injector) site(name string) *site {
	if in.sites == nil {
		in.sites = make(map[string]*site)
	}
	s, ok := in.sites[name]
	if !ok {
		s = &site{}
		in.sites[name] = s
	}
	return s
}

// Fail schedules occurrences n through n+times-1 (1-based, counted from
// the injector's creation or last Reset) of the named site to fail.
// Transient failures succeed once the schedule is exhausted; fatal ones
// model permanently broken infrastructure at that occurrence.
func (in *Injector) Fail(name string, n, times int, transient bool) {
	if in == nil || n < 1 || times < 1 {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	s.plans = append(s.plans, plan{from: n, to: n + times - 1, transient: transient})
}

// FailNth schedules a single fatal failure at the Nth occurrence of the
// named site.
func (in *Injector) FailNth(name string, n int) { in.Fail(name, n, 1, false) }

// FailNext schedules a failure at the next occurrence of the named
// site, given the current call count (use Calls to obtain it).
func (in *Injector) FailNext(name string, times int, transient bool) {
	if in == nil {
		return
	}
	in.mu.Lock()
	s := in.site(name)
	n := s.calls + 1
	s.plans = append(s.plans, plan{from: n, to: n + times - 1, transient: transient})
	in.mu.Unlock()
}

// Check records one occurrence of the named site and returns an *Error
// if a failure is scheduled for it. Instrumented operations call it
// before mutating any state, so an injected failure never leaves the
// operation half applied. A nil injector always returns nil.
func (in *Injector) Check(name string) error {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	s := in.site(name)
	s.calls++
	for _, p := range s.plans {
		if s.calls >= p.from && s.calls <= p.to {
			s.tripped++
			return &Error{Site: name, N: s.calls, IsTransient: p.transient}
		}
	}
	return nil
}

// Calls reports how many times the named site has been checked.
func (in *Injector) Calls(name string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.site(name).calls
}

// Tripped reports how many failures have been injected at the named
// site.
func (in *Injector) Tripped(name string) int {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.site(name).tripped
}

// Reset clears all schedules and counters.
func (in *Injector) Reset() {
	if in == nil {
		return
	}
	in.mu.Lock()
	in.sites = make(map[string]*site)
	in.mu.Unlock()
}
