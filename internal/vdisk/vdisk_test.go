package vdisk

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/mem"
)

func TestReadWriteBlock(t *testing.T) {
	d := New(8)
	if d.Blocks() != 8 {
		t.Fatalf("Blocks = %d", d.Blocks())
	}
	if err := d.WriteBlock(3, 100, []byte("block data")); err != nil {
		t.Fatalf("WriteBlock: %v", err)
	}
	buf := make([]byte, BlockSize)
	if err := d.ReadBlock(3, buf); err != nil {
		t.Fatalf("ReadBlock: %v", err)
	}
	if !bytes.Equal(buf[100:110], []byte("block data")) {
		t.Fatalf("readback = %q", buf[100:110])
	}
	if d.Writes() != 1 {
		t.Fatalf("Writes = %d", d.Writes())
	}
}

func TestBoundsChecks(t *testing.T) {
	d := New(2)
	if err := d.WriteBlock(2, 0, []byte{1}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("out-of-range block: %v", err)
	}
	if err := d.WriteBlock(0, BlockSize-1, []byte{1, 2}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("overrunning write: %v", err)
	}
	if err := d.WriteBlock(0, -1, []byte{1}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("negative offset: %v", err)
	}
	if err := d.ReadBlock(-1, make([]byte, 1)); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("negative read: %v", err)
	}
}

func TestDirtyTracking(t *testing.T) {
	d := New(16)
	d.EnableDirtyLogging()
	_ = d.WriteBlock(1, 0, []byte{1})
	_ = d.WriteBlock(9, 0, []byte{1})
	_ = d.WriteBlock(1, 8, []byte{2}) // re-dirty: counted once
	if d.DirtyCount() != 2 {
		t.Fatalf("DirtyCount = %d, want 2", d.DirtyCount())
	}
	blocks := d.HarvestDirty(nil)
	if len(blocks) != 2 || blocks[0] != 1 || blocks[1] != 9 {
		t.Fatalf("harvest = %v", blocks)
	}
	if d.DirtyCount() != 0 {
		t.Fatal("harvest did not clear the log")
	}
}

func TestCopyBlocksTo(t *testing.T) {
	src, dst := New(4), New(4)
	_ = src.WriteBlock(2, 0, []byte("replicate"))
	if err := src.CopyBlocksTo(dst, []mem.PFN{2}); err != nil {
		t.Fatalf("CopyBlocksTo: %v", err)
	}
	if !Equal(src, dst) {
		t.Fatal("disks differ after copy")
	}
	other := New(8)
	if err := src.CopyBlocksTo(other, nil); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("size mismatch: %v", err)
	}
	if err := src.CopyBlocksTo(dst, []mem.PFN{99}); !errors.Is(err, ErrBadBlock) {
		t.Fatalf("bad block copy: %v", err)
	}
}

func TestSnapshotRestore(t *testing.T) {
	d := New(4)
	_ = d.WriteBlock(0, 0, []byte("before"))
	snap := d.Snapshot()
	_ = d.WriteBlock(0, 0, []byte("after!"))
	if err := d.Restore(snap); err != nil {
		t.Fatalf("Restore: %v", err)
	}
	buf := make([]byte, 6)
	_ = d.ReadBlock(0, buf)
	if string(buf) != "before" {
		t.Fatalf("restored = %q", buf)
	}
	if err := d.Restore(snap[:10]); !errors.Is(err, ErrSizeMismatch) {
		t.Fatalf("short restore: %v", err)
	}
}

// Property: after any write sequence and a dirty-block copy, the backup
// equals the primary.
func TestReplicationProperty(t *testing.T) {
	src, dst := New(16), New(16)
	src.EnableDirtyLogging()
	src.MarkAllDirty()
	_ = src.CopyBlocksTo(dst, src.HarvestDirty(nil))
	f := func(writes []uint16, data []byte) bool {
		if len(data) == 0 {
			data = []byte{1}
		}
		if len(data) > 64 {
			data = data[:64]
		}
		for _, w := range writes {
			block := int(w) % 16
			off := int(w>>4) % (BlockSize - len(data))
			if err := src.WriteBlock(block, off, data); err != nil {
				return false
			}
		}
		if err := src.CopyBlocksTo(dst, src.HarvestDirty(nil)); err != nil {
			return false
		}
		return Equal(src, dst)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualDifferentSizes(t *testing.T) {
	if Equal(New(2), New(4)) {
		t.Fatal("differently sized disks reported equal")
	}
}
