// Package vdisk implements the virtual block device substrate for the
// paper's disk-snapshot extension (§3.1: "CRIMES focuses on
// checkpointing CPU and memory state, but this can easily be extended
// to include disk snapshots as well"). An attached disk is replicated
// VM state: its dirty blocks are propagated to a backup disk at every
// checkpoint and rolled back together with memory after a failed audit,
// so a detected attack cannot leave effects on storage either.
package vdisk

import (
	"errors"
	"fmt"

	"repro/internal/fault"
	"repro/internal/mem"
)

// BlockSize is the virtual disk's block size in bytes.
const BlockSize = 4096

// FaultCopy is the fault-injection site for block replication: an armed
// fault fails CopyBlocksTo before any block is copied.
const FaultCopy = "vdisk.copy"

var (
	// ErrBadBlock is returned for out-of-range block accesses.
	ErrBadBlock = errors.New("vdisk: block out of range")
	// ErrSizeMismatch is returned when checkpointing between disks of
	// different sizes.
	ErrSizeMismatch = errors.New("vdisk: disk sizes differ")
)

// Disk is a fixed-size virtual block device with dirty-block tracking.
type Disk struct {
	blocks       [][]byte
	dirty        *mem.Bitmap
	dirtyLogging bool
	writes       uint64
	faults       *fault.Injector
}

// New creates a zeroed disk with the given number of blocks.
func New(blocks int) *Disk {
	d := &Disk{
		blocks: make([][]byte, blocks),
		dirty:  mem.NewBitmap(blocks),
	}
	for i := range d.blocks {
		d.blocks[i] = make([]byte, BlockSize)
	}
	return d
}

// Blocks reports the disk size in blocks.
func (d *Disk) Blocks() int { return len(d.blocks) }

// InjectFaults arms a fault injector on the disk (mirroring the
// hypervisor's hook). Passing nil disables injection.
func (d *Disk) InjectFaults(in *fault.Injector) { d.faults = in }

// Faults returns the armed fault injector, or nil.
func (d *Disk) Faults() *fault.Injector { return d.faults }

// Writes reports the cumulative number of block writes.
func (d *Disk) Writes() uint64 { return d.writes }

// ReadBlock copies block i into buf (up to BlockSize bytes).
func (d *Disk) ReadBlock(i int, buf []byte) error {
	if i < 0 || i >= len(d.blocks) {
		return fmt.Errorf("vdisk: read block %d of %d: %w", i, len(d.blocks), ErrBadBlock)
	}
	copy(buf, d.blocks[i])
	return nil
}

// WriteBlock writes data into block i at the given offset, marking the
// block dirty.
func (d *Disk) WriteBlock(i int, offset int, data []byte) error {
	if i < 0 || i >= len(d.blocks) {
		return fmt.Errorf("vdisk: write block %d of %d: %w", i, len(d.blocks), ErrBadBlock)
	}
	if offset < 0 || offset+len(data) > BlockSize {
		return fmt.Errorf("vdisk: write [%d,%d) in block %d: %w", offset, offset+len(data), i, ErrBadBlock)
	}
	copy(d.blocks[i][offset:], data)
	d.writes++
	if d.dirtyLogging {
		d.dirty.Set(i)
	}
	return nil
}

// EnableDirtyLogging starts dirty-block tracking.
func (d *Disk) EnableDirtyLogging() {
	d.dirtyLogging = true
	d.dirty.ClearAll()
}

// DirtyCount reports how many blocks are currently dirty.
func (d *Disk) DirtyCount() int { return d.dirty.Count() }

// MarkAllDirty marks every block dirty (used for the initial sync).
func (d *Disk) MarkAllDirty() {
	for i := 0; i < d.dirty.Len(); i++ {
		d.dirty.Set(i)
	}
}

// HarvestDirty returns the dirty block list and clears the log.
func (d *Disk) HarvestDirty(dst []mem.PFN) []mem.PFN {
	dst = d.dirty.ScanWords(dst)
	d.dirty.ClearAll()
	return dst
}

// MarkDirty re-marks the given blocks dirty — the undo of a
// HarvestDirty whose consumer failed before replicating the blocks.
func (d *Disk) MarkDirty(blocks []mem.PFN) {
	for _, b := range blocks {
		if uint64(b) < uint64(d.dirty.Len()) {
			d.dirty.Set(int(b))
		}
	}
}

// CopyBlocksTo propagates the given blocks to another disk of the same
// size (the checkpoint commit path).
func (d *Disk) CopyBlocksTo(dst *Disk, blocks []mem.PFN) error {
	if dst.Blocks() != d.Blocks() {
		return fmt.Errorf("vdisk: copy to %d-block disk from %d: %w", dst.Blocks(), d.Blocks(), ErrSizeMismatch)
	}
	if err := d.faults.Check(FaultCopy); err != nil {
		return fmt.Errorf("vdisk: copy %d blocks: %w", len(blocks), err)
	}
	for _, b := range blocks {
		if uint64(b) >= uint64(len(d.blocks)) {
			return fmt.Errorf("vdisk: copy block %d: %w", b, ErrBadBlock)
		}
		copy(dst.blocks[b], d.blocks[b])
	}
	return nil
}

// Snapshot returns a deep copy of the disk contents.
func (d *Disk) Snapshot() []byte {
	out := make([]byte, len(d.blocks)*BlockSize)
	for i, b := range d.blocks {
		copy(out[i*BlockSize:], b)
	}
	return out
}

// Restore loads a snapshot produced by Snapshot.
func (d *Disk) Restore(snap []byte) error {
	if len(snap) != len(d.blocks)*BlockSize {
		return fmt.Errorf("vdisk: restore %d bytes into %d-block disk: %w", len(snap), len(d.blocks), ErrSizeMismatch)
	}
	for i := range d.blocks {
		copy(d.blocks[i], snap[i*BlockSize:])
	}
	return nil
}

// Equal reports whether two disks have identical contents.
func Equal(a, b *Disk) bool {
	if a.Blocks() != b.Blocks() {
		return false
	}
	for i := range a.blocks {
		for j := range a.blocks[i] {
			if a.blocks[i][j] != b.blocks[i][j] {
				return false
			}
		}
	}
	return true
}
