package crimes

import (
	"crypto/sha256"
	"reflect"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/guestos"
)

// The delta-replication equivalence property: the v2 wire protocol is a
// bandwidth optimization, not a semantic change. For randomized
// workloads, clean or under attack, every epoch's findings and incident
// outcome must be identical across raw, delta, and delta+dedup
// replication, and the backup domain must converge to byte-for-byte the
// same snapshot whichever protocol carried it there. The explicit raw
// arm must additionally be priced identically to the zero-value default
// (virtual time bit-for-bit), since RemusRaw is the seed path. Scripts
// reuse the scan-cache property generator so every equivalence suite
// draws from the same workload distribution.

type remusEpochOutcome struct {
	findings []Finding
	incident bool
	repl     cost.ReplicationCounts
	vtime    time.Duration
}

type remusRun struct {
	epochs        []remusEpochOutcome
	primaryDigest [32]byte
	backupDigest  [32]byte
}

func runRemusArm(t *testing.T, seed int64, cfg Config, script []propOp, attack string) *remusRun {
	t.Helper()
	cfg.Modules = DefaultModules()
	cfg.EpochInterval = 20 * time.Millisecond
	cfg.Opt = OptNone // every dirty page goes through the encrypted conduit
	sys, err := Launch(Options{GuestPages: 512, Seed: seed, Config: cfg})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer sys.Close()

	var pids []uint32
	type alloc struct {
		pid  uint32
		va   uint64
		size int
	}
	var allocs []alloc
	run := &remusRun{}
	next := 0
	for e := 1; e <= propEpochs; e++ {
		res, err := sys.RunEpoch(func(g *guestos.Guest) error {
			for ; next < len(script) && script[next].epoch == e; next++ {
				op := script[next]
				switch op.kind {
				case "start":
					pid, err := g.StartProcess("remusproc", 1000, op.size)
					if err != nil {
						return err
					}
					pids = append(pids, pid)
				case "compute":
					if err := g.Compute(pids[0], op.n); err != nil {
						return err
					}
				case "malloc":
					va, err := g.Malloc(pids[len(pids)-1], op.size)
					if err != nil {
						return err
					}
					allocs = append(allocs, alloc{pids[len(pids)-1], va, op.size})
				case "write":
					if len(allocs) == 0 {
						continue
					}
					a := allocs[op.n%len(allocs)]
					buf := make([]byte, 1+op.n%a.size)
					for i := range buf {
						buf[i] = byte(op.n + i)
					}
					if err := g.WriteUser(a.pid, a.va, buf); err != nil {
						return err
					}
				case "packet":
					payload := make([]byte, op.size)
					if err := g.SendPacket(pids[0], [4]byte{10, 0, 0, 9}, 443, payload); err != nil {
						return err
					}
				}
			}
			if e == propEpochs && attack != "" {
				return injectPropAttack(g, pids[len(pids)-1], attack)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d attack %q epoch %d: %v", seed, attack, e, err)
		}
		run.epochs = append(run.epochs, remusEpochOutcome{
			findings: res.Findings,
			incident: res.Incident != nil,
			repl:     res.Replication,
			vtime:    res.VirtualTime,
		})
		if res.Incident != nil {
			break
		}
	}

	ckpt := sys.Controller.Checkpointer()
	prim, err := ckpt.Primary().DumpMemory()
	if err != nil {
		t.Fatalf("dump primary: %v", err)
	}
	back, err := ckpt.Backup().DumpMemory()
	if err != nil {
		t.Fatalf("dump backup: %v", err)
	}
	run.primaryDigest = sha256.Sum256(prim.Mem)
	run.backupDigest = sha256.Sum256(back.Mem)
	return run
}

func TestRemusPropertyEquivalence(t *testing.T) {
	attacks := []string{"", "", "overflow", "malware", "hijack", "hidden"}
	for i, attack := range attacks {
		seed := int64(600 + 31*i)
		script := genScript(seed)
		def := runRemusArm(t, seed, Config{}, script, attack)
		raw := runRemusArm(t, seed, Config{Remus: RemusRaw}, script, attack)
		delta := runRemusArm(t, seed, Config{Remus: RemusDelta}, script, attack)
		dedup := runRemusArm(t, seed, Config{Remus: RemusDeltaDedup}, script, attack)

		arms := []struct {
			name string
			run  *remusRun
		}{{"raw", raw}, {"delta", delta}, {"delta+dedup", dedup}}
		for _, arm := range arms {
			if len(arm.run.epochs) != len(def.epochs) {
				t.Fatalf("seed %d attack %q: %s arm ran %d epochs, default ran %d",
					seed, attack, arm.name, len(arm.run.epochs), len(def.epochs))
			}
			for e := range def.epochs {
				if !reflect.DeepEqual(arm.run.epochs[e].findings, def.epochs[e].findings) {
					t.Errorf("seed %d attack %q epoch %d: %s findings diverge:\n%+v\nvs default:\n%+v",
						seed, attack, e+1, arm.name, arm.run.epochs[e].findings, def.epochs[e].findings)
				}
				if arm.run.epochs[e].incident != def.epochs[e].incident {
					t.Errorf("seed %d attack %q epoch %d: %s incident=%v, default=%v",
						seed, attack, e+1, arm.name, arm.run.epochs[e].incident, def.epochs[e].incident)
				}
			}
			// Whatever protocol carried the pages, the backup holds the
			// identical snapshot and the primary is untouched by it.
			if arm.run.primaryDigest != def.primaryDigest {
				t.Errorf("seed %d attack %q: %s primary memory diverges from default", seed, attack, arm.name)
			}
			if arm.run.backupDigest != def.backupDigest {
				t.Errorf("seed %d attack %q: %s backup snapshot diverges from default", seed, attack, arm.name)
			}
		}
		if attack != "" && !def.epochs[len(def.epochs)-1].incident {
			t.Errorf("seed %d: attack %q went undetected", seed, attack)
		}

		// Raw is the seed path: priced identically to the zero-value
		// default, epoch by epoch, and free of replication counters.
		for e := range def.epochs {
			if raw.epochs[e].vtime != def.epochs[e].vtime {
				t.Errorf("seed %d attack %q epoch %d: raw arm virtual time %v != default %v",
					seed, attack, e+1, raw.epochs[e].vtime, def.epochs[e].vtime)
			}
			if def.epochs[e].repl != (cost.ReplicationCounts{}) {
				t.Errorf("seed %d epoch %d: default arm carries replication counters: %+v",
					seed, e+1, def.epochs[e].repl)
			}
			if raw.epochs[e].repl != (cost.ReplicationCounts{}) {
				t.Errorf("seed %d epoch %d: raw arm carries replication counters: %+v",
					seed, e+1, raw.epochs[e].repl)
			}
		}

		// The v2 arms really shipped through the new protocol, and dedup
		// beat the raw framing on these small-write workloads.
		var deltaTotal, dedupTotal cost.ReplicationCounts
		for _, out := range delta.epochs {
			deltaTotal.Add(out.repl)
		}
		for _, out := range dedup.epochs {
			dedupTotal.Add(out.repl)
		}
		if deltaTotal.WireBytes == 0 || deltaTotal.Batches == 0 {
			t.Errorf("seed %d attack %q: delta arm never shipped v2 bytes: %+v", seed, attack, deltaTotal)
		}
		if dedupTotal.WireBytes == 0 || dedupTotal.WireBytes >= dedupTotal.RawBytes {
			t.Errorf("seed %d attack %q: dedup arm wire bytes %d not below raw framing %d",
				seed, attack, dedupTotal.WireBytes, dedupTotal.RawBytes)
		}
	}
}

// The root package re-exports the mode constants and parser.
func TestRemusModeReexports(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want RemusMode
	}{{"", RemusRaw}, {"raw", RemusRaw}, {"delta", RemusDelta}, {"delta+dedup", RemusDeltaDedup}} {
		got, err := ParseRemusMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseRemusMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseRemusMode("zstd"); err == nil {
		t.Error("ParseRemusMode accepted an unknown mode")
	}
}
