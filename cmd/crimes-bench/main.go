// Command crimes-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	crimes-bench            # run every experiment
//	crimes-bench -list      # list experiment IDs
//	crimes-bench -exp fig3  # run one experiment
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crimes-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list        = flag.Bool("list", false, "list experiment IDs and exit")
		exp         = flag.String("exp", "", "run a single experiment by ID")
		csvDir      = flag.String("csv", "", "also write <id>.csv files for plottable figures into this directory")
		pauseJSON   = flag.String("pause-json", "", "write the parallel pause-path benchmark as JSON to this path and exit")
		fleetJSON   = flag.String("fleet-json", "", "write the fleet-scheduling benchmark as JSON to this path and exit")
		scanJSON    = flag.String("scan-json", "", "write the scan-path cache benchmark as JSON to this path and exit")
		cowJSON     = flag.String("cow-json", "", "write the CoW commit benchmark as JSON to this path and exit")
		remusJSON   = flag.String("remus-json", "", "write the delta-replication benchmark as JSON to this path and exit")
		clusterJSON = flag.String("cluster-json", "", "write the multi-host cluster benchmark as JSON to this path and exit")
		webJSON     = flag.String("web-json", "", "write the web-scale load benchmark as JSON to this path and exit")
	)
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Println(e.ID)
		}
		return nil
	}
	if *pauseJSON != "" {
		out, err := experiments.PauseBreakdownJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*pauseJSON, out, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *pauseJSON, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *pauseJSON)
		return nil
	}
	if *fleetJSON != "" {
		out, err := experiments.FleetSweepJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*fleetJSON, out, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *fleetJSON, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *fleetJSON)
		return nil
	}
	if *scanJSON != "" {
		out, err := experiments.ScanSweepJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*scanJSON, out, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *scanJSON, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *scanJSON)
		return nil
	}
	if *cowJSON != "" {
		out, err := experiments.CoWSweepJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*cowJSON, out, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *cowJSON, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *cowJSON)
		return nil
	}
	if *remusJSON != "" {
		out, err := experiments.DeltaSweepJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*remusJSON, out, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *remusJSON, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *remusJSON)
		return nil
	}
	if *clusterJSON != "" {
		out, err := experiments.ClusterSweepJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*clusterJSON, out, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *clusterJSON, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *clusterJSON)
		return nil
	}
	if *webJSON != "" {
		out, err := experiments.WebSweepJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*webJSON, out, 0o644); err != nil {
			return fmt.Errorf("write %s: %w", *webJSON, err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *webJSON)
		return nil
	}
	if *exp != "" {
		gen, err := experiments.ByID(*exp)
		if err != nil {
			return err
		}
		res, err := gen()
		if err != nil {
			return err
		}
		fmt.Println(res.Text)
		return writeCSV(*csvDir, res)
	}
	for _, e := range experiments.All() {
		res, err := e.Gen()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Println(res.Text)
		if err := writeCSV(*csvDir, res); err != nil {
			return err
		}
	}
	return nil
}

func writeCSV(dir string, res *experiments.Result) error {
	if dir == "" || res.CSV == "" {
		return nil
	}
	path := filepath.Join(dir, res.ID+".csv")
	if err := os.WriteFile(path, []byte(res.CSV), 0o644); err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
