// Command crimes runs a guest workload under CRIMES protection and
// demonstrates attack detection, rollback-and-replay pinpointing, and
// forensic reporting.
//
// Usage:
//
//	crimes -workload swaptions -epochs 10 -interval 100ms
//	crimes -attack overflow          # case study 1
//	crimes -attack malware -windows  # case study 2
//	crimes -attack hijack
//	crimes -attack hidden
//	crimes -vms 4 -stagger           # fleet: 4 co-located VMs, staggered
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/cost"
	"repro/internal/detect"
	"repro/internal/fleet"
	"repro/internal/guestos"
	"repro/internal/honeypot"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/slo"
	"repro/internal/websim"
	"repro/internal/workload"

	crimes "repro"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crimes:", err)
		os.Exit(1)
	}
}

func run() (retErr error) {
	var (
		wl         = flag.String("workload", "swaptions", "PARSEC workload profile to run")
		epochs     = flag.Int("epochs", 5, "number of epochs to execute")
		interval   = flag.Duration("interval", 100*time.Millisecond, "epoch interval")
		attack     = flag.String("attack", "", "inject an attack in the final epoch: overflow|malware|hijack|hidden")
		windows    = flag.Bool("windows", false, "boot a Windows guest profile")
		bestEffort = flag.Bool("best-effort", false, "disable output buffering (Best Effort safety)")
		pot        = flag.Bool("honeypot", false, "after an incident, convert the VM into a monitored honeypot")
		modules    = flag.String("modules", "default", "comma-separated detector modules (see -modules list)")
		faultSpec  = flag.String("fault", "", "inject a fault: site:N[:transient] fails the Nth call at site (e.g. hv.suspend:2, remus.send:1:transient)")
		workers    = flag.Int("workers", 0, "pause-path worker pool size (0 = GOMAXPROCS, 1 = exact serial path)")
		optLevel   = flag.String("opt", "full", "checkpointing optimization level: noopt|memcpy|premap|full (noopt ships every dirty page through the encrypted conduit)")
		remusMode  = flag.String("remus", "raw", "replication wire protocol: raw (full page copies), delta (XOR-delta vs last shipped), delta+dedup (delta + content-hash dedup)")
		remusBudg  = flag.Int("remus-budget", 0, "delta modes: shipped-version table budget in pages (0 = unbounded)")
		scanCache  = flag.String("scan-cache", "off", "audit read strategy: off (direct reads), uncached (per-epoch mappings), on (persistent cache + incremental walks)")
		cow        = flag.Bool("cow", false, "copy-on-write commit: arm write faults on dirty pages and resume immediately, copying into the backup lazily")
		vms        = flag.Int("vms", 1, "number of co-located VMs to protect (fleet mode when > 1)")
		hosts      = flag.Int("hosts", 1, "number of simulated hosts (cluster mode when > 1: ring placement, anti-affine replicas, failover)")
		hostKill   = flag.String("host-kill", "", "cluster: kill a host mid-run, as host:round (e.g. host1:3)")
		stagger    = flag.Bool("stagger", false, "stagger fleet epoch boundaries (default bound: 1 VM paused at a time)")
		maxPaused  = flag.Int("max-paused", 0, "fleet: max VMs paused/committing at once (0 = unbounded, or 1 with -stagger)")
		traceOut   = flag.String("trace", "", "write a JSONL epoch trace (one event per phase) to this file")
		metricsOut = flag.String("metrics", "", "write a Prometheus-format metrics dump to this file on exit")
		scen       = flag.String("scenario", "", "run catalog scenarios: a name, all, or family:F (see -scenario-list)")
		scenList   = flag.Bool("scenario-list", false, "list the scenario catalog and exit")
		scenTrace  = flag.String("scenario-trace-dir", "", "write each scenario's JSONL obs trace into this directory")
		webUsers   = flag.Int64("web", 0, "closed-loop web users: replay this run's epoch timeline into the cohort load generator and report client tail latency (single-VM mode)")
		sloTarget  = flag.Duration("slo", 0, "client p99 objective: enable the adaptive SLO controller steering interval, workers, and pause-gate K (0 = off)")
	)
	flag.Parse()

	if *scenList {
		return listScenarios(os.Stdout)
	}
	if *scen != "" {
		return runScenarios(os.Stdout, *scen, *scenTrace)
	}

	if *modules == "list" {
		for _, n := range detect.AvailableModules() {
			fmt.Println(n)
		}
		return nil
	}
	mods, err := detect.ModulesByName(*modules)
	if err != nil {
		return err
	}
	scMode, err := crimes.ParseScanCacheMode(*scanCache)
	if err != nil {
		return err
	}
	rmMode, err := crimes.ParseRemusMode(*remusMode)
	if err != nil {
		return err
	}
	opt, err := parseOpt(*optLevel)
	if err != nil {
		return err
	}
	cfg := crimes.Config{
		EpochInterval:    *interval,
		ReplayOnIncident: true,
		Modules:          mods,
		Workers:          *workers,
		Opt:              opt,
		ScanCache:        scMode,
		CoW:              *cow,
		Remus:            rmMode,
		RemusBudgetPages: *remusBudg,
	}
	if *bestEffort {
		cfg.Safety = crimes.BestEffort
	}
	if *traceOut != "" || *metricsOut != "" {
		var traceW io.Writer
		if *traceOut != "" {
			tf, err := os.Create(*traceOut)
			if err != nil {
				return err
			}
			defer func() {
				if err := tf.Close(); err != nil && retErr == nil {
					retErr = err
				}
			}()
			traceW = tf
		}
		obsrv := crimes.NewObserver(traceW, *metricsOut != "")
		cfg.Obs = obsrv
		if *metricsOut != "" {
			defer func() {
				err := os.WriteFile(*metricsOut, []byte(obsrv.Metrics.DumpString()), 0o644)
				if err != nil && retErr == nil {
					retErr = err
				}
			}()
		}
	}
	if *hosts > 1 {
		if *webUsers > 0 {
			return errors.New("-web needs single-VM mode")
		}
		return runCluster(clusterOpts{
			hosts:     *hosts,
			vms:       *vms,
			stagger:   *stagger,
			maxPaused: *maxPaused,
			windows:   *windows,
			workload:  *wl,
			epochs:    *epochs,
			interval:  *interval,
			attack:    *attack,
			hostKill:  *hostKill,
			slo:       *sloTarget,
			cfg:       cfg,
		})
	}
	if *hostKill != "" {
		return errors.New("-host-kill needs cluster mode (-hosts > 1)")
	}
	if *vms > 1 {
		if *webUsers > 0 {
			return errors.New("-web needs single-VM mode")
		}
		return runFleet(fleetOpts{
			vms:       *vms,
			stagger:   *stagger,
			maxPaused: *maxPaused,
			windows:   *windows,
			workload:  *wl,
			epochs:    *epochs,
			interval:  *interval,
			attack:    *attack,
			slo:       *sloTarget,
			cfg:       cfg,
		})
	}
	if *sloTarget > 0 {
		cfg.SLO = slo.New(slo.Config{TargetP99: *sloTarget})
	}
	sys, err := crimes.Launch(crimes.Options{
		GuestPages: 2048,
		Windows:    *windows,
		Config:     cfg,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	if *faultSpec != "" {
		inj, err := parseFault(*faultSpec)
		if err != nil {
			return err
		}
		sys.HV.InjectFaults(inj)
	}

	spec, err := workload.ParsecByName(*wl)
	if err != nil {
		return err
	}
	runner := workload.NewRunner(spec, 64)

	// -web: a cohort load generator lives through the same virtual
	// timeline the controller produces, so every checkpoint pause lands
	// on simulated clients; its per-epoch p99 also feeds the SLO
	// controller when one is live.
	var clients *websim.Gen
	var clientHist *obs.Histogram
	var clientsServed uint64
	if *webUsers > 0 {
		clients, err = websim.NewGen(websim.GenParams{Classes: websim.DefaultClasses(*webUsers)})
		if err != nil {
			return err
		}
		clientHist = obs.NewHistogram(websim.LatencyBuckets())
	}

	for i := 1; i <= *epochs; i++ {
		last := i == *epochs
		res, err := sys.RunEpoch(func(g *guestos.Guest) error {
			if err := runner.RunEpoch(g, *interval); err != nil {
				return err
			}
			if last && *attack != "" {
				return inject(g, runner.PID(), *attack)
			}
			return nil
		})
		if err != nil {
			if res != nil {
				reportRecovery(res.Recovery)
			}
			return err
		}
		fmt.Printf("epoch %2d: dirty=%5d pages, pause=%8v, findings=%d\n",
			res.Epoch, res.Counts.DirtyPages, res.Phases.Total().Round(time.Microsecond), len(res.Findings))
		reportCommit(res.Commit)
		reportRecovery(res.Recovery)
		if clients != nil {
			clients.Run(res.Interval)
			clients.Pause(res.Phases.Total())
			clientHist.Merge(clients.Hist())
			p99, n := clients.TakeEpoch()
			clientsServed += n
			cfg.SLO.ObserveP99(p99, n) // no-op when the controller is off
		}
		if res.Incident != nil {
			fmt.Printf("\nINCIDENT at epoch %d; %d buffered outputs discarded\n",
				res.Incident.Epoch, sys.Controller.Buffer().Discarded())
			if res.Incident.Pinpoint != nil {
				fmt.Println("pinpoint:", res.Incident.Pinpoint.Describe())
			}
			fmt.Println()
			fmt.Println(res.Incident.Report.Render())
			if *pot {
				return runHoneypot(sys, runner.PID())
			}
			return nil
		}
	}
	fmt.Printf("\ncompleted %d clean epochs; virtual time %v (pause %v, %.1f%%)\n",
		sys.Controller.Epoch(), sys.Controller.VirtualTime().Round(time.Millisecond),
		sys.Controller.TotalPause().Round(time.Millisecond),
		100*float64(sys.Controller.TotalPause())/float64(sys.Controller.VirtualTime()))
	if sc := sys.Controller.ScanCacheTotals(); sc != (cost.ScanCacheCounts{}) {
		rate := 0.0
		if sc.CacheHits+sc.CacheMisses > 0 {
			rate = 100 * float64(sc.CacheHits) / float64(sc.CacheHits+sc.CacheMisses)
		}
		used, capacity := sys.Controller.ScanCacheLive()
		fmt.Printf("scan cache: hits=%d misses=%d (%.1f%% hit) unmaps=%d swept=%d memo=%d/%d live=%d/%d pages\n",
			sc.CacheHits, sc.CacheMisses, rate, sc.CacheUnmaps, sc.CacheSwept,
			sc.MemoHits, sc.MemoHits+sc.MemoMisses, used, capacity)
	}
	if cw := sys.Controller.CoWTotals(); cw != (cost.CoWCounts{}) {
		fmt.Printf("cow: armed=%d write_faults=%d drained=%d\n",
			cw.ArmedPages, cw.WriteFaults, cw.DrainPages)
	}
	if rp := sys.Controller.ReplicationTotals(); rp != (cost.ReplicationCounts{}) {
		fmt.Printf("replication: wire=%d raw=%d (%.1f%% cut) pages raw=%d delta=%d same=%d dup=%d zero=%d\n",
			rp.WireBytes, rp.RawBytes, 100*rp.Reduction(),
			rp.RawPages, rp.DeltaPages, rp.SamePages, rp.DupPages, rp.ZeroPages)
	}
	if clients != nil {
		virt := sys.Controller.VirtualTime()
		fmt.Printf("web: %d users served %d requests (%.0f req/s); p50=%v p99=%v p999=%v\n",
			clients.Users(), clientsServed, float64(clientsServed)/virt.Seconds(),
			time.Duration(clientHist.Quantile(0.50)).Round(time.Microsecond),
			time.Duration(clientHist.Quantile(0.99)).Round(time.Microsecond),
			time.Duration(clientHist.Quantile(0.999)).Round(time.Microsecond))
	}
	if cfg.SLO.Enabled() {
		tun := cfg.SLO.Tunables()
		fmt.Printf("slo: %d tuning steps; interval=%v workers=%d (detection lag %v)\n",
			sys.Controller.SLOSteps(), tun.Interval, tun.Workers, cfg.SLO.DetectionLag())
	}
	return nil
}

// parseOpt parses the -opt checkpointing optimization level.
func parseOpt(s string) (cost.Optimization, error) {
	switch s {
	case "noopt", "none":
		return crimes.OptNone, nil
	case "memcpy":
		return crimes.OptMemcpy, nil
	case "premap":
		return crimes.OptPremap, nil
	case "full", "":
		return crimes.OptFull, nil
	default:
		return 0, fmt.Errorf("unknown -opt level %q (want noopt|memcpy|premap|full)", s)
	}
}

// fleetOpts collects the fleet-mode flags.
type fleetOpts struct {
	vms       int
	stagger   bool
	maxPaused int
	windows   bool
	workload  string
	epochs    int
	interval  time.Duration
	attack    string
	slo       time.Duration
	cfg       crimes.Config
}

// runFleet protects several co-located VMs at once, each running the
// selected workload, and prints the per-VM fleet table. With -attack,
// the attack is injected into vm0's final epoch only — its neighbors
// keep running their clean epochs, demonstrating failure isolation.
func runFleet(o fleetOpts) error {
	spec, err := workload.ParsecByName(o.workload)
	if err != nil {
		return err
	}
	f, err := fleet.New(fleet.Config{
		VMs:        o.vms,
		GuestPages: 1024,
		MaxPaused:  o.maxPaused,
		Stagger:    o.stagger,
		Windows:    o.windows,
		SLO:        slo.Config{TargetP99: o.slo},
		Core:       o.cfg,
	})
	if err != nil {
		return err
	}
	defer f.Close()

	runners := make([]*workload.Runner, o.vms)
	for i := range runners {
		runners[i] = workload.NewRunner(spec, 64)
	}
	rep := f.Run(o.epochs, func(vm *fleet.VM, epoch int) func(*guestos.Guest) error {
		r := runners[vm.Index]
		last := epoch == o.epochs
		return func(g *guestos.Guest) error {
			if err := r.RunEpoch(g, o.interval); err != nil {
				return err
			}
			if last && o.attack != "" && vm.Index == 0 {
				return inject(g, r.PID(), o.attack)
			}
			return nil
		}
	})
	fmt.Print(rep.Render())
	for _, vm := range f.VMs() {
		s := vm.Stats()
		if s.Err != "" && !s.Halted {
			fmt.Printf("%s stopped: %s\n", s.Name, s.Err)
		}
	}
	return nil
}

// clusterOpts collects the cluster-mode flags.
type clusterOpts struct {
	hosts     int
	vms       int
	stagger   bool
	maxPaused int
	windows   bool
	workload  string
	epochs    int
	interval  time.Duration
	attack    string
	hostKill  string
	slo       time.Duration
	cfg       crimes.Config
}

// runCluster protects VMs across several simulated hosts: ring
// placement, anti-affine replicas, and — with -host-kill — a mid-run
// host failure the control plane fails over transparently. With
// -attack, the attack is injected into vm0's final epoch.
func runCluster(o clusterOpts) error {
	spec, err := workload.ParsecByName(o.workload)
	if err != nil {
		return err
	}
	cl, err := cluster.New(cluster.Config{
		Hosts:            o.hosts,
		VMs:              o.vms,
		MaxPausedPerHost: o.maxPaused,
		Stagger:          o.stagger,
		Windows:          o.windows,
		SLO:              slo.Config{TargetP99: o.slo},
		Core:             o.cfg,
	})
	if err != nil {
		return err
	}
	defer cl.Close()

	for _, vm := range cl.VMs() {
		if r := vm.ReplicaHostName(); r != "" {
			fmt.Printf("placed %s on %s, replica on %s\n", vm.Name, vm.HostName(), r)
		} else {
			fmt.Printf("placed %s on %s, unreplicated\n", vm.Name, vm.HostName())
		}
	}
	if o.hostKill != "" {
		host, round, err := parseHostKill(o.hostKill)
		if err != nil {
			return err
		}
		cl.KillHostAt(host, round)
		fmt.Printf("scheduled %s to die at round %d\n", host, round)
	}

	runners := make([]*workload.Runner, o.vms)
	for i := range runners {
		runners[i] = workload.NewRunner(spec, 64)
	}
	rep := cl.Run(o.epochs, func(vm *cluster.VM, round int) func(*guestos.Guest) error {
		r := runners[vm.Index]
		last := round == o.epochs
		return func(g *guestos.Guest) error {
			if err := r.RunEpoch(g, o.interval); err != nil {
				return err
			}
			if last && o.attack != "" && vm.Index == 0 {
				return inject(g, r.PID(), o.attack)
			}
			return nil
		}
	})
	fmt.Print(rep.Render())
	for _, vm := range cl.VMs() {
		s := vm.Stats()
		if s.Err != "" && !s.Halted {
			fmt.Printf("%s stopped: %s\n", s.Name, s.Err)
		}
		if vm.Promotions > 0 {
			fmt.Printf("%s failed over to %s (replica now on %s)\n",
				vm.Name, vm.HostName(), vm.ReplicaHostName())
		}
	}
	return nil
}

// parseHostKill parses the -host-kill host:round spec.
func parseHostKill(spec string) (string, int, error) {
	i := strings.LastIndex(spec, ":")
	if i <= 0 {
		return "", 0, fmt.Errorf("bad -host-kill spec %q (want host:round)", spec)
	}
	round, err := strconv.Atoi(spec[i+1:])
	if err != nil || round < 1 {
		return "", 0, fmt.Errorf("bad -host-kill round %q (want a positive integer)", spec[i+1:])
	}
	return spec[:i], round, nil
}

// parseFault builds an injector from a site:N[:transient] spec.
func parseFault(spec string) (*crimes.FaultInjector, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("bad -fault spec %q (want site:N[:transient])", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad -fault occurrence %q (want a positive integer)", parts[1])
	}
	transient := false
	if len(parts) == 3 {
		if parts[2] != "transient" {
			return nil, fmt.Errorf("bad -fault modifier %q (want \"transient\")", parts[2])
		}
		transient = true
	}
	inj := &crimes.FaultInjector{}
	inj.Fail(parts[0], n, 1, transient)
	return inj, nil
}

// reportCommit prints the commit's measured parallel phase timings and
// the pipelined remote-replication window state. The serial path (one
// worker, no remote activity) prints nothing, keeping the default
// output identical to previous releases.
func reportCommit(rep crimes.CommitReport) {
	t := rep.Timings
	if t.Workers > 1 {
		fmt.Printf("  parallel: workers=%d scan=%v undo=%v memcpy=%v diskcopy=%v ship=%v\n",
			t.Workers,
			t.Scan.Round(time.Microsecond), t.Undo.Round(time.Microsecond),
			t.MemCopy.Round(time.Microsecond), t.DiskCopy.Round(time.Microsecond),
			t.RemoteShip.Round(time.Microsecond))
	}
	if rep.RemoteInFlight > 0 || rep.RemoteAcked > 0 {
		fmt.Printf("  remote: in-flight=%d acked=%d\n", rep.RemoteInFlight, rep.RemoteAcked)
	}
}

// reportRecovery prints any retries, degradations, or unwinds an epoch
// needed; a clean recovery prints nothing.
func reportRecovery(rec crimes.Recovery) {
	if rec.Clean() {
		return
	}
	if rec.Retries > 0 {
		fmt.Printf("  recovery: %d transient failure(s) retried\n", rec.Retries)
	}
	if rec.Unwind != crimes.UnwindNone {
		fmt.Printf("  recovery: unwound via %s\n", rec.Unwind)
	}
	for _, d := range rec.Degradations {
		fmt.Printf("  degraded: %s\n", d)
	}
	for _, w := range rec.Warnings {
		fmt.Printf("  warning: %s\n", w)
	}
}

func runHoneypot(sys *crimes.System, pid uint32) error {
	fmt.Println("converting compromised VM into a monitored honeypot...")
	hp, err := honeypot.Convert(sys.Guest)
	if err != nil {
		return err
	}
	// Simulated continued attacker activity inside the quarantine.
	if _, err := hp.RunEpoch(func(g *guestos.Guest) error {
		if err := g.SendPacket(pid, [4]byte{66, 66, 66, 66}, 6666, []byte("c2 beacon")); err != nil {
			return err
		}
		return g.HijackSyscall(3, 0xdead)
	}); err != nil {
		return err
	}
	if err := hp.Release(); err != nil {
		return err
	}
	fmt.Println(hp.Report())
	return nil
}

// listScenarios prints the catalog: one line per scenario with its
// family, config arm, and expected outcome, then the family and arm
// vocabularies the -scenario selectors accept.
func listScenarios(w io.Writer) error {
	fmt.Fprintf(w, "%-24s %-14s %-12s %s\n", "SCENARIO", "FAMILY", "ARM", "EXPECTED")
	for _, s := range scenario.Catalog() {
		fmt.Fprintf(w, "%-24s %-14s %-12s %s\n", s.Name, s.Family, s.Arm, s.Expect.Outcome)
	}
	fmt.Fprintf(w, "\nfamilies: %s\n", strings.Join(scenario.Families(), ", "))
	fmt.Fprintf(w, "arms:     %s\n", strings.Join(scenario.ArmNames(), ", "))
	return nil
}

// runScenarios executes a catalog selection — a scenario name, "all",
// or "family:F" — and fails on any outcome drift.
func runScenarios(w io.Writer, sel, traceDir string) error {
	var list []scenario.Scenario
	switch {
	case sel == "all":
		list = scenario.Catalog()
	case strings.HasPrefix(sel, "family:"):
		fam := strings.TrimPrefix(sel, "family:")
		list = scenario.ByFamily(fam)
		if len(list) == 0 {
			return fmt.Errorf("no scenarios in family %q (families: %s)",
				fam, strings.Join(scenario.Families(), ", "))
		}
	default:
		s, err := scenario.ByName(sel)
		if err != nil {
			return fmt.Errorf("%w (try -scenario-list)", err)
		}
		list = []scenario.Scenario{s}
	}
	failed := 0
	fmt.Fprintf(w, "%-24s %-14s %-12s %-9s %-9s %s\n",
		"SCENARIO", "FAMILY", "ARM", "EXPECTED", "ACTUAL", "STATUS")
	for _, s := range list {
		r, err := scenario.Run(s, scenario.Options{TraceDir: traceDir})
		if err != nil {
			return err
		}
		status := "PASS"
		if !r.Pass {
			status = "FAIL: " + r.Why
			failed++
		}
		fmt.Fprintf(w, "%-24s %-14s %-12s %-9s %-9s %s\n",
			r.Name, r.Family, r.Arm, r.Expected, r.Actual, status)
	}
	fmt.Fprintf(w, "\n%d/%d scenarios matched their expected outcome\n", len(list)-failed, len(list))
	if failed > 0 {
		return fmt.Errorf("%d scenario(s) drifted from their recorded outcome", failed)
	}
	return nil
}

func inject(g *guestos.Guest, pid uint32, kind string) error {
	switch kind {
	case "overflow":
		_, err := workload.InjectOverflow(g, pid, 64, 16)
		return err
	case "malware":
		_, err := workload.InjectMalware(g)
		return err
	case "hijack":
		return workload.InjectSyscallHijack(g, 11)
	case "hidden":
		_, err := workload.InjectHiddenProcess(g, "lurker")
		return err
	default:
		return errors.New("unknown attack: " + kind)
	}
}
