// Command crimes-forensics analyzes saved CRIMES memory dumps offline,
// the way an investigator consumes the full system checkpoints CRIMES
// writes to disk after an incident (§5.5). With -demo it first creates
// a compromised guest, saves its dumps, and then analyzes them.
//
// Usage:
//
//	crimes-forensics -demo -dir /tmp/dumps
//	crimes-forensics -dump bad.crimesdump -base good.crimesdump
//	crimes-forensics -dump bad.crimesdump -pslist -psxview -timeline -modscan
//	crimes-forensics -dump bad.crimesdump -procdump 2 -grep secret
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/volatility"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crimes-forensics:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		demo     = flag.Bool("demo", false, "create demo dumps of a compromised guest, then analyze them")
		dir      = flag.String("dir", ".", "directory for -demo dumps")
		dumpPath = flag.String("dump", "", "dump file to analyze")
		basePath = flag.String("base", "", "earlier (clean) dump: run the semantic diff base->dump")
		pslist   = flag.Bool("pslist", true, "run pslist")
		psxview  = flag.Bool("psxview", true, "run the psscan/pslist/pid-hash cross view")
		timeline = flag.Bool("timeline", false, "order recoverable process records by start time")
		modscan  = flag.Bool("modscan", false, "heuristic module scan + hidden-module cross view")
		procPID  = flag.Uint("procdump", 0, "extract a process image by pid")
		grep     = flag.String("grep", "", "grep the extracted process image for a string")
	)
	flag.Parse()

	if *demo {
		good, bad, err := makeDemoDumps(*dir)
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s and %s\n\n", good, bad)
		*dumpPath, *basePath = bad, good
		*timeline, *modscan = true, true
	}
	if *dumpPath == "" {
		return errors.New("no dump given (use -dump or -demo)")
	}
	d, err := volatility.LoadFile(*dumpPath)
	if err != nil {
		return err
	}
	fmt.Printf("dump: %s (%s, %d pages)\n\n", *dumpPath, d.Profile.KernelName, d.Snapshot.Pages)

	if *pslist {
		procs, err := volatility.PsList(d)
		if err != nil {
			return err
		}
		fmt.Printf("pslist (%d):\n", len(procs))
		for _, p := range procs {
			fmt.Printf("  pid=%-4d uid=%-5d %s\n", p.PID, p.UID, p.Name)
		}
		fmt.Println()
	}
	if *psxview {
		rows, err := volatility.PsXView(d)
		if err != nil {
			return err
		}
		fmt.Println("psxview:")
		for _, r := range rows {
			fmt.Printf("  %-18s pid=%-4d pslist=%-5v psscan=%-5v pidhash=%-5v suspicious=%v\n",
				r.Name, r.PID, r.InPsList, r.InPsScan, r.InPIDHash, r.Suspicious())
		}
		fmt.Println()
	}
	if *timeline {
		tl, err := volatility.Timeline(d)
		if err != nil {
			return err
		}
		fmt.Println("timeline:")
		for _, e := range tl {
			fmt.Printf("  t+%-10d pid=%-4d %s\n", e.WhenNs, e.PID, e.What)
		}
		fmt.Println()
	}
	if *modscan {
		hidden, err := volatility.HiddenModules(d)
		if err != nil {
			return err
		}
		fmt.Printf("hidden modules (modscan vs module list): %d\n", len(hidden))
		for _, m := range hidden {
			fmt.Printf("  %-20s %d bytes at %#x\n", m.Name, m.Size, m.VA)
		}
		fmt.Println()
	}
	if *procPID != 0 {
		pd, err := volatility.ProcDump(d, uint32(*procPID))
		if err != nil {
			return err
		}
		fmt.Printf("procdump pid=%d: %q, %d bytes\n", pd.PID, pd.Name, len(pd.Image))
		if *grep != "" {
			for _, hit := range volatility.GrepImage(pd.Image, *grep, 4) {
				fmt.Printf("  match: %q\n", hit)
			}
		}
		fmt.Println()
	}
	if *basePath != "" {
		base, err := volatility.LoadFile(*basePath)
		if err != nil {
			return err
		}
		diff, err := volatility.Diff(base, d)
		if err != nil {
			return err
		}
		rep := &volatility.Report{Title: "Offline Dump Diff", Diff: diff}
		fmt.Println(rep.Render())
	}
	return nil
}

// makeDemoDumps boots a guest, compromises it, and saves before/after
// dumps.
func makeDemoDumps(dir string) (string, string, error) {
	h := hv.New(1040)
	dom, err := h.CreateDomain("demo", 1024)
	if err != nil {
		return "", "", err
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{})
	if err != nil {
		return "", "", err
	}
	if _, err := g.StartProcess("sshd", 0, 4); err != nil {
		return "", "", err
	}
	save := func(name string) (string, error) {
		snap, err := dom.DumpMemory()
		if err != nil {
			return "", err
		}
		path := filepath.Join(dir, name)
		return path, volatility.NewDump(snap, g.Profile(), g.SystemMap()).SaveFile(path)
	}
	good, err := save("last-good.crimesdump")
	if err != nil {
		return "", "", err
	}
	if _, err := workload.InjectHiddenProcess(g, "cryptolocker"); err != nil {
		return "", "", err
	}
	if _, err := g.LoadModule("rootkit_mod", 8192); err != nil {
		return "", "", err
	}
	if err := g.HideModule("rootkit_mod"); err != nil {
		return "", "", err
	}
	if err := workload.InjectSyscallHijack(g, 3); err != nil {
		return "", "", err
	}
	bad, err := save("audit-fail.crimesdump")
	if err != nil {
		return "", "", err
	}
	return good, bad, nil
}
