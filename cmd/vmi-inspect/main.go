// Command vmi-inspect boots a demonstration guest, optionally injects
// attacks, and prints what virtual-machine introspection sees from
// outside the VM: the process list, pid-hash cross view, module list,
// syscall-table integrity, sockets, file handles, and the guest-aided
// canary table.
//
// Usage:
//
//	vmi-inspect                    # clean Linux guest
//	vmi-inspect -hide -hijack      # rootkit-style tampering
//	vmi-inspect -windows -malware  # the case-study Windows guest
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/vmi"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "vmi-inspect:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		windows = flag.Bool("windows", false, "use the Windows guest profile")
		malware = flag.Bool("malware", false, "inject the case-study malware")
		hide    = flag.Bool("hide", false, "inject a hidden (unlinked) process")
		hijack  = flag.Bool("hijack", false, "hijack a syscall table entry")
	)
	flag.Parse()

	prof := guestos.LinuxProfile()
	if *windows {
		prof = guestos.WindowsProfile()
	}
	h := hv.New(1040)
	dom, err := h.CreateDomain("demo", 1024)
	if err != nil {
		return err
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{Profile: prof})
	if err != nil {
		return err
	}

	// Introspection is initialized against the clean guest so the
	// syscall integrity check has a known-good baseline.
	ctx, err := vmi.NewContext(dom, g.Profile(), g.SystemMap())
	if err != nil {
		return err
	}
	if err := ctx.Preprocess(); err != nil {
		return err
	}

	// Populate the guest.
	pid, err := g.StartProcess("app-server", 1000, 8)
	if err != nil {
		return err
	}
	if _, err := g.Malloc(pid, 256); err != nil {
		return err
	}
	if *malware {
		if _, err := workload.InjectMalware(g); err != nil {
			return err
		}
	}
	if *hide {
		if _, err := workload.InjectHiddenProcess(g, "lurker"); err != nil {
			return err
		}
	}
	if *hijack {
		if err := workload.InjectSyscallHijack(g, 7); err != nil {
			return err
		}
	}

	return dump(ctx, g)
}

func dump(ctx *vmi.Context, g *guestos.Guest) error {
	fmt.Printf("guest: %s (%s)\n\n", g.Profile().KernelName, g.Profile().OS)

	procs, err := ctx.ProcessList()
	if err != nil {
		return err
	}
	fmt.Printf("process list (%d):\n", len(procs))
	for _, p := range procs {
		fmt.Printf("  pid=%-4d uid=%-5d state=%d %s\n", p.PID, p.UID, p.State, p.Name)
	}

	hashed, err := ctx.PIDHashList()
	if err != nil {
		return err
	}
	inList := make(map[uint64]bool, len(procs))
	for _, p := range procs {
		inList[p.TaskVA] = true
	}
	for _, p := range hashed {
		if !inList[p.TaskVA] {
			fmt.Printf("  HIDDEN (pid_hash only): pid=%d %s\n", p.PID, p.Name)
		}
	}

	mods, err := ctx.ModuleList()
	if err != nil {
		return err
	}
	fmt.Printf("\nkernel modules (%d):\n", len(mods))
	for _, m := range mods {
		fmt.Printf("  %-20s %6d bytes\n", m.Name, m.Size)
	}

	bad, err := ctx.CheckSyscallIntegrity()
	if err != nil {
		return err
	}
	if len(bad) == 0 {
		fmt.Println("\nsyscall table: intact")
	} else {
		for _, m := range bad {
			fmt.Printf("\nsyscall table: entry %d HIJACKED (%#x, expected %#x)\n", m.Index, m.Got, m.Want)
		}
	}

	socks, err := ctx.Sockets()
	if err != nil {
		return err
	}
	fmt.Printf("\nopen sockets (%d):\n", len(socks))
	for _, s := range socks {
		fmt.Printf("  pid=%-4d -> %d.%d.%d.%d:%d\n", s.OwnerPID,
			s.RemoteIP[0], s.RemoteIP[1], s.RemoteIP[2], s.RemoteIP[3], s.RemotePort)
	}

	files, err := ctx.FileHandles()
	if err != nil {
		return err
	}
	fmt.Printf("\nopen file handles (%d):\n", len(files))
	for _, f := range files {
		fmt.Printf("  pid=%-4d %s\n", f.OwnerPID, f.Path)
	}

	keys, err := ctx.Registry()
	if err != nil {
		return err
	}
	fmt.Printf("\nregistry hive (%d keys):\n", len(keys))
	for _, k := range keys {
		fmt.Printf("  %-55s = %s\n", k.Path, k.Value)
	}

	canaries, err := ctx.CanaryTable()
	if err != nil {
		return err
	}
	fmt.Printf("\nactive canaries (guest-aided table): %d\n", len(canaries))
	return nil
}
