package crimes

// Ablation benchmarks for the design choices DESIGN.md calls out:
// dirty-page-scoped canary scans, sync vs async scanning, checkpoint
// history depth, disk checkpointing, and remote HA replication.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/cost"
	"repro/internal/detect"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/mem"
	"repro/internal/vdisk"
	"repro/internal/vmi"
)

// BenchmarkAblationCanaryScanScope compares the §3.2 dirty-page-scoped
// canary scan against a full-table scan. With few dirtied pages, the
// scoped scan touches only the affected canaries.
func BenchmarkAblationCanaryScanScope(b *testing.B) {
	h := hv.New(4112)
	dom, err := h.CreateDomain("guest", 4096)
	if err != nil {
		b.Fatal(err)
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{Seed: 2})
	if err != nil {
		b.Fatal(err)
	}
	pid, err := g.StartProcess("app", 0, 256)
	if err != nil {
		b.Fatal(err)
	}
	var lastVA uint64
	for i := 0; i < 1500; i++ {
		if lastVA, err = g.Malloc(pid, 128); err != nil {
			b.Fatal(err)
		}
	}
	ctx, err := vmi.NewContext(dom, g.Profile(), g.SystemMap())
	if err != nil {
		b.Fatal(err)
	}
	// A sparse dirty bitmap: one touched page (the last allocation's).
	dirty := mem.NewBitmap(dom.Pages())
	pa, err := g.TranslateUser(pid, lastVA)
	if err != nil {
		b.Fatal(err)
	}
	dirty.Set(int(pa >> mem.PageShift))

	b.Run("full-scan", func(b *testing.B) {
		sc := &detect.ScanContext{VMI: ctx, Counts: &detect.ScanCounts{}}
		for i := 0; i < b.N; i++ {
			if _, err := (detect.CanaryModule{}).Scan(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dirty-scoped", func(b *testing.B) {
		sc := &detect.ScanContext{VMI: ctx, Dirty: dirty, Counts: &detect.ScanCounts{}}
		for i := 0; i < b.N; i++ {
			if _, err := (detect.CanaryModule{}).Scan(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationScanMode compares synchronous audits (inside the
// pause) against asynchronous audits of the last checkpoint.
func BenchmarkAblationScanMode(b *testing.B) {
	for _, mode := range []ScanMode{ScanSync, ScanAsync} {
		b.Run(mode.String(), func(b *testing.B) {
			sys, err := Launch(Options{GuestPages: 1024, Config: Config{
				EpochInterval: 50 * time.Millisecond,
				Scan:          mode,
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			var pid uint32
			if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
				pid, err = g.StartProcess("app", 0, 32)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			payload := bytes.Repeat([]byte{1}, 256)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
					return g.WriteUser(pid, g.Profile().UserVirtBase, payload)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationHistoryDepth measures the cost of retaining a
// checkpoint history (the paper keeps only the most recent checkpoint).
func BenchmarkAblationHistoryDepth(b *testing.B) {
	for _, depth := range []int{0, 4} {
		name := "none"
		if depth > 0 {
			name = "depth-4"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := Launch(Options{GuestPages: 1024, Config: Config{
				EpochInterval: 50 * time.Millisecond,
				HistoryDepth:  depth,
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			var pid uint32
			if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
				pid, err = g.StartProcess("app", 0, 16)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
					return g.Compute(pid, 1)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDiskCheckpoint measures the marginal cost of the
// disk-snapshot extension.
func BenchmarkAblationDiskCheckpoint(b *testing.B) {
	for _, blocks := range []int{0, 64} {
		name := "mem-only"
		if blocks > 0 {
			name = "with-disk"
		}
		b.Run(name, func(b *testing.B) {
			sys, err := Launch(Options{GuestPages: 1024, Config: Config{
				EpochInterval: 50 * time.Millisecond,
				DiskBlocks:    blocks,
			}})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			var pid uint32
			if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
				pid, err = g.StartProcess("db", 0, 16)
				return err
			}); err != nil {
				b.Fatal(err)
			}
			row := bytes.Repeat([]byte{7}, 512)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
					if blocks > 0 {
						if err := g.WriteBlock(pid, i%blocks, 0, row); err != nil {
							return err
						}
					}
					return g.WriteUser(pid, g.Profile().UserVirtBase, row)
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationRemoteReplication measures the added cost of
// shipping checkpoints to a remote backup on top of local Full
// optimization (the paper's HA + security configuration).
func BenchmarkAblationRemoteReplication(b *testing.B) {
	for _, remote := range []bool{false, true} {
		name := "local-only"
		if remote {
			name = "local+remote"
		}
		b.Run(name, func(b *testing.B) {
			const pages = 1024
			h := hv.New(3*pages + 16)
			dom, err := h.CreateDomain("vm", pages)
			if err != nil {
				b.Fatal(err)
			}
			c, err := checkpoint.New(h, dom, cost.Full)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			if remote {
				if err := c.EnableRemoteReplication([]byte("0123456789abcdef")); err != nil {
					b.Fatal(err)
				}
			}
			data := bytes.Repeat([]byte{3}, mem.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for p := 0; p < 64; p++ {
					if err := dom.WritePhys(uint64(p)*16*mem.PageSize, data); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := c.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDeepScan compares the per-checkpoint cross-view scan
// against the full-memory deep sweep (why deep scans belong in async
// mode).
func BenchmarkAblationDeepScan(b *testing.B) {
	h := hv.New(2064)
	dom, err := h.CreateDomain("guest", 2048)
	if err != nil {
		b.Fatal(err)
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{Seed: 6})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := g.StartProcess("app", 0, 8); err != nil {
		b.Fatal(err)
	}
	ctx, err := vmi.NewContext(dom, g.Profile(), g.SystemMap())
	if err != nil {
		b.Fatal(err)
	}
	sc := &detect.ScanContext{VMI: ctx, Counts: &detect.ScanCounts{}}
	b.Run("cross-view", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (detect.HiddenProcessModule{}).Scan(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("deep-psscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := (detect.DeepScanModule{}).Scan(sc); err != nil {
				b.Fatal(err)
			}
		}
	})
	_ = vdisk.BlockSize
}
