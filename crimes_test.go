package crimes

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/detect"
	"repro/internal/guestos"
	"repro/internal/workload"
)

func TestLaunchDefaults(t *testing.T) {
	sys, err := Launch(Options{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer sys.Close()
	if sys.Guest.Profile().OS != guestos.Linux {
		t.Fatal("default guest is not Linux")
	}
	res, err := sys.RunEpoch(func(g *guestos.Guest) error {
		_, err := g.StartProcess("hello", 0, 4)
		return err
	})
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	if res.Incident != nil {
		t.Fatalf("clean epoch produced incident: %+v", res.Incident)
	}
}

func TestLaunchWindows(t *testing.T) {
	sys, err := Launch(Options{Windows: true})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer sys.Close()
	if sys.Guest.Profile().OS != guestos.Windows {
		t.Fatal("guest is not Windows")
	}
}

func TestPublicAPIOverflowScenario(t *testing.T) {
	// The quickstart scenario through the public facade only.
	sys, err := Launch(Options{
		Seed: 4,
		Config: Config{
			EpochInterval:    20 * time.Millisecond,
			ReplayOnIncident: true,
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer sys.Close()

	var pid uint32
	var buf uint64
	if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
		if pid, err = g.StartProcess("victim", 0, 8); err != nil {
			return err
		}
		buf, err = g.Malloc(pid, 32)
		return err
	}); err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	res, err := sys.RunEpoch(func(g *guestos.Guest) error {
		return g.WriteUser(pid, buf, bytes.Repeat([]byte{7}, 48))
	})
	if err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
	if res.Incident == nil || res.Incident.Pinpoint == nil {
		t.Fatal("overflow not detected+pinpointed via public API")
	}
	if !strings.Contains(res.Incident.Report.Render(), "pinpointed") {
		t.Fatal("report missing pinpoint")
	}
}

func TestDefaultModulesCoverAllKinds(t *testing.T) {
	mods := DefaultModules()
	if len(mods) != 4 {
		t.Fatalf("DefaultModules = %d, want 4", len(mods))
	}
	names := map[string]bool{}
	for _, m := range mods {
		names[m.Name()] = true
	}
	for _, want := range []string{"canary-overflow", "malware-blacklist", "syscall-integrity", "hidden-process"} {
		if !names[want] {
			t.Fatalf("missing module %s", want)
		}
	}
}

func TestFacadeWithWorkloadRunner(t *testing.T) {
	// A PARSEC workload runs cleanly for several epochs under the full
	// default module stack (no false positives through the facade).
	sys, err := Launch(Options{GuestPages: 2048, Config: Config{EpochInterval: 100 * time.Millisecond}})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer sys.Close()
	spec, err := workload.ParsecByName("volrend")
	if err != nil {
		t.Fatal(err)
	}
	r := workload.NewRunner(spec, 64)
	for i := 0; i < 4; i++ {
		res, err := sys.RunEpoch(func(g *guestos.Guest) error {
			return r.RunEpoch(g, 100*time.Millisecond)
		})
		if err != nil {
			t.Fatalf("epoch %d: %v", i, err)
		}
		if len(res.Findings) != 0 {
			t.Fatalf("false positive: %+v", res.Findings)
		}
	}
}

func TestModeConstantsWiredThrough(t *testing.T) {
	sys, err := Launch(Options{
		Config: Config{
			Safety:  BestEffort,
			Scan:    ScanSync,
			Opt:     OptMemcpy,
			Modules: []Module{detect.SyscallModule{}},
		},
	})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer sys.Close()
	if sys.Controller.Checkpointer().Optimization() != OptMemcpy {
		t.Fatal("optimization option not applied")
	}
	if sys.Controller.Buffer().Mode() != BestEffort {
		t.Fatal("safety mode not applied")
	}
}
