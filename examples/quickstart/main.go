// Quickstart: protect a guest with CRIMES, trigger a heap buffer
// overflow, and watch the framework detect it at the epoch boundary,
// discard the attack's outputs, replay the epoch to pinpoint the exact
// corrupting write, and emit a forensic report.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/guestos"

	crimes "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := crimes.Launch(crimes.Options{
		Config: crimes.Config{
			EpochInterval:    50 * time.Millisecond,
			ReplayOnIncident: true,
		},
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	// Epoch 1: a benign application allocates a 64-byte buffer through
	// the guest's canary-placing malloc.
	var pid uint32
	var buf uint64
	if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
		if pid, err = g.StartProcess("victim-app", 1000, 8); err != nil {
			return err
		}
		buf, err = g.Malloc(pid, 64)
		return err
	}); err != nil {
		return err
	}
	fmt.Println("epoch 1: clean, checkpoint committed")

	// Epoch 2: a classic C bug — 80 bytes written into the 64-byte
	// buffer, overrunning the canary; then an exfiltration attempt.
	res, err := sys.RunEpoch(func(g *guestos.Guest) error {
		if err := g.WriteUser(pid, buf, bytes.Repeat([]byte{'A'}, 80)); err != nil {
			return err
		}
		return g.SendPacket(pid, [4]byte{203, 0, 113, 7}, 4444, []byte("stolen"))
	})
	if err != nil {
		return err
	}
	if res.Incident == nil {
		return fmt.Errorf("expected the overflow to be detected")
	}

	fmt.Printf("epoch 2: AUDIT FAILED — %s\n", res.Findings[0].Description)
	fmt.Printf("outputs discarded (never left the VM): %d\n", sys.Controller.Buffer().Discarded())
	if res.Incident.Pinpoint != nil {
		fmt.Printf("replay pinpointed the write: %s\n\n", res.Incident.Pinpoint.Describe())
	}
	fmt.Println(res.Incident.Report.Render())
	return nil
}
