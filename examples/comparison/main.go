// Comparison: the paper's core trade-off (§1, §5.2) on one bug. The
// same heap overflow runs three ways:
//
//  1. unprotected — the corruption and exfiltration go through;
//  2. AddressSanitizer-style inline checking — caught at the exact
//     write, but every access pays the instrumentation tax (+40-60%);
//  3. CRIMES — execution runs at near-native speed and the attack is
//     caught at the epoch boundary, with outputs still buffered (zero
//     external impact) and replay recovering the exact write anyway.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/cost"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/workload"

	crimes "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func overflowEpoch(g *guestos.Guest, pid uint32, buf uint64) error {
	if err := g.WriteUser(pid, buf, bytes.Repeat([]byte{'A'}, 80)); err != nil {
		return err
	}
	return g.SendPacket(pid, [4]byte{203, 0, 113, 9}, 4444, []byte("stolen"))
}

func run() error {
	spec, err := workload.ParsecByName("swaptions")
	if err != nil {
		return err
	}
	m := cost.Default()
	epoch := 200 * time.Millisecond
	dirty := spec.DirtyPages(epoch)
	pause := m.Checkpoint(cost.Full, cost.Counts{
		TotalPages:  workload.PaperVMPages,
		DirtyPages:  dirty,
		BytesCopied: dirty * 4096,
	}).Total()

	fmt.Println("scenario 1: unprotected")
	if err := runUnprotected(); err != nil {
		return err
	}

	fmt.Println("\nscenario 2: AddressSanitizer-style inline checking")
	if err := runASan(); err != nil {
		return err
	}
	fmt.Printf("  runtime tax on %s: ~%.0f%% on every access (paper: 40-60%%)\n",
		spec.Name, 100*(spec.ASanFactor-1))

	fmt.Println("\nscenario 3: CRIMES")
	if err := runCRIMES(); err != nil {
		return err
	}
	fmt.Printf("  runtime tax on %s: ~%.1f%% (one %.1fms scan+checkpoint per %v epoch)\n",
		spec.Name, 100*float64(pause)/float64(epoch), pause.Seconds()*1000, epoch)
	return nil
}

func runUnprotected() error {
	h := hv.New(530)
	dom, err := h.CreateDomain("bare", 512)
	if err != nil {
		return err
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{})
	if err != nil {
		return err
	}
	var out capture
	g.SetOutputSink(&out)
	pid, _ := g.StartProcess("victim", 0, 8)
	buf, _ := g.Malloc(pid, 64)
	if err := overflowEpoch(g, pid, buf); err != nil {
		return err
	}
	fmt.Printf("  overflow executed, canary silently corrupted, %d packet(s) LEFT THE SYSTEM\n", out.n)
	return nil
}

func runASan() error {
	h := hv.New(530)
	dom, err := h.CreateDomain("asan", 512)
	if err != nil {
		return err
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{})
	if err != nil {
		return err
	}
	g.SetMemcheck(true)
	pid, _ := g.StartProcess("victim", 0, 8)
	buf, _ := g.Malloc(pid, 64)
	err = overflowEpoch(g, pid, buf)
	if !errors.Is(err, guestos.ErrMemcheck) {
		return fmt.Errorf("expected inline detection, got %v", err)
	}
	fmt.Printf("  caught inline at the write: %v\n", err)
	return nil
}

func runCRIMES() error {
	sys, err := crimes.Launch(crimes.Options{
		Config: crimes.Config{EpochInterval: 50 * time.Millisecond, ReplayOnIncident: true},
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	var pid uint32
	var buf uint64
	if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
		if pid, err = g.StartProcess("victim", 0, 8); err != nil {
			return err
		}
		buf, err = g.Malloc(pid, 64)
		return err
	}); err != nil {
		return err
	}
	res, err := sys.RunEpoch(func(g *guestos.Guest) error {
		return overflowEpoch(g, pid, buf)
	})
	if err != nil {
		return err
	}
	if res.Incident == nil {
		return errors.New("CRIMES missed the overflow")
	}
	fmt.Printf("  caught at the epoch boundary; %d buffered output(s) discarded; replay pinpointed: %s\n",
		sys.Controller.Buffer().Discarded(), res.Incident.Pinpoint.Describe())
	return nil
}

type capture struct{ n int }

func (c *capture) SendPacket(guestos.Packet)   { c.n++ }
func (c *capture) WriteDisk(guestos.DiskWrite) {}
