// Webserver: the §5.4 trade-off for latency-sensitive guests. A web
// server runs under CRIMES at several epoch intervals in both safety
// modes; the closed-loop client's normalized latency and throughput
// show why network-bound VMs want small intervals or Best Effort mode.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/cost"
	"repro/internal/websim"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	model := cost.Default()
	spec := workload.Web(workload.WebMedium)

	base, err := websim.Simulate(websim.DefaultParams())
	if err != nil {
		return err
	}
	fmt.Printf("baseline (no protection): %.0f req/s, %v avg latency\n\n",
		base.Throughput, base.AvgLatency.Round(time.Microsecond))

	fmt.Printf("%-10s %-22s %-22s\n", "", "Synchronous Safety", "Best Effort Safety")
	fmt.Printf("%-10s %10s %10s %10s %10s\n", "epoch", "latency", "req/s", "latency", "req/s")
	for _, e := range []time.Duration{20, 50, 100, 200} {
		epoch := e * time.Millisecond
		dirty := spec.DirtyPages(epoch)
		pause := model.Checkpoint(cost.Full, cost.Counts{
			TotalPages:  workload.PaperVMPages,
			DirtyPages:  dirty,
			BytesCopied: dirty * 4096,
		}).Total()

		params := websim.DefaultParams()
		params.Epoch = epoch
		params.Pause = pause

		params.Buffered = true
		sync, err := websim.Simulate(params)
		if err != nil {
			return err
		}
		params.Buffered = false
		be, err := websim.Simulate(params)
		if err != nil {
			return err
		}
		fmt.Printf("%-10v %10v %10.0f %10v %10.0f\n", epoch,
			sync.AvgLatency.Round(time.Millisecond), sync.Throughput,
			be.AvgLatency.Round(time.Millisecond), be.Throughput)
	}
	fmt.Println("\nTakeaway (§5.4): choose small intervals or Best Effort for network-bound")
	fmt.Println("VMs; large intervals suit CPU-bound VMs where checkpoints dominate.")
	return nil
}
