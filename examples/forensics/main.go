// Forensics: offline Volatility-style analysis of memory dumps, the way
// an investigator would use CRIMES' retained checkpoints. A guest is
// snapshotted before and after a rootkit-style compromise (a hidden
// process plus a syscall hijack); the dumps are then analyzed with
// pslist, psscan, psxview, dump diffing, and procdump — without any
// access to the live VM.
package main

import (
	"fmt"
	"log"

	"repro/internal/guestfs"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/vdisk"
	"repro/internal/volatility"
	"repro/internal/workload"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	h := hv.New(1040)
	dom, err := h.CreateDomain("victim", 1024)
	if err != nil {
		return err
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{})
	if err != nil {
		return err
	}
	if _, err := g.StartProcess("sshd", 0, 4); err != nil {
		return err
	}

	takeDump := func() (*volatility.Dump, error) {
		snap, err := dom.DumpMemory()
		if err != nil {
			return nil, err
		}
		return volatility.NewDump(snap, g.Profile(), g.SystemMap()), nil
	}

	before, err := takeDump()
	if err != nil {
		return err
	}

	// The compromise.
	hiddenPID, err := workload.InjectHiddenProcess(g, "cryptolocker")
	if err != nil {
		return err
	}
	if err := workload.InjectSyscallHijack(g, 3); err != nil {
		return err
	}

	after, err := takeDump()
	if err != nil {
		return err
	}

	// Offline analysis.
	fmt.Println("== pslist (task list view) ==")
	procs, err := volatility.PsList(after)
	if err != nil {
		return err
	}
	for _, p := range procs {
		fmt.Printf("  pid=%d %s\n", p.PID, p.Name)
	}

	fmt.Println("\n== psxview (cross view) ==")
	rows, err := volatility.PsXView(after)
	if err != nil {
		return err
	}
	for _, r := range rows {
		fmt.Printf("  %-16s pid=%-4d pslist=%-5v psscan=%-5v pidhash=%-5v suspicious=%v\n",
			r.Name, r.PID, r.InPsList, r.InPsScan, r.InPIDHash, r.Suspicious())
	}

	fmt.Println("\n== dump diff ==")
	diff, err := volatility.Diff(before, after)
	if err != nil {
		return err
	}
	for _, idx := range diff.SyscallsHijacked {
		fmt.Printf("  syscall table entry %d modified\n", idx)
	}
	pages, err := volatility.DiffPages(before, after)
	if err != nil {
		return err
	}
	fmt.Printf("  %d guest pages changed between dumps\n", len(pages))

	fmt.Println("\n== procdump of the hidden process ==")
	pd, err := volatility.ProcDump(after, hiddenPID)
	if err != nil {
		return err
	}
	fmt.Printf("  extracted %q: %d bytes (heap %#x-%#x, stack %#x-%#x)\n",
		pd.Name, len(pd.Image), pd.HeapStart, pd.HeapEnd, pd.StackLow, pd.StackHigh)

	// Disk forensics: the attacker also wiped a log file on the guest's
	// virtual disk; the deleted inode and its contents are recoverable.
	fmt.Println("\n== disk forensics (deleted file recovery) ==")
	disk := vdisk.New(64)
	g.AttachDisk(disk)
	dev := guestfs.GuestDev{G: g, PID: hiddenPID}
	fs, err := guestfs.Mkfs(dev, 8)
	if err != nil {
		return err
	}
	if err := fs.Create("/var/log/audit.log", 0, g.Now()); err != nil {
		return err
	}
	if err := fs.WriteFile("/var/log/audit.log", []byte("attacker ssh from 203.0.113.9"), g.Now()); err != nil {
		return err
	}
	if err := fs.Delete("/var/log/audit.log"); err != nil {
		return err
	}
	entries, err := guestfs.ScanInodes(disk)
	if err != nil {
		return err
	}
	for _, e := range entries {
		fmt.Printf("  inode %d %q size=%d deleted=%v\n", e.Inode, e.Name, e.Size, e.Deleted)
	}
	recovered, err := guestfs.RecoverDeleted(disk, "/var/log/audit.log")
	if err != nil {
		return err
	}
	fmt.Printf("  recovered deleted log: %q\n", recovered)
	return nil
}
