// Honeypot: the extension sketched in the paper's §6 — after CRIMES
// detects an attack, the compromised VM is not destroyed but converted
// into a carefully monitored honeypot: its outputs are quarantined and
// its kernel structure pages are put under write-event monitoring, so
// the attacker's next moves (C2 beacons, kernel tampering, droppers)
// are observed and recorded without any external effect.
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"repro/internal/guestos"
	"repro/internal/honeypot"

	crimes "repro"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	sys, err := crimes.Launch(crimes.Options{
		Config: crimes.Config{EpochInterval: 50 * time.Millisecond},
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	// The compromise: a heap overflow caught by the canary audit.
	var pid uint32
	var buf uint64
	if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
		if pid, err = g.StartProcess("victim", 1000, 8); err != nil {
			return err
		}
		buf, err = g.Malloc(pid, 64)
		return err
	}); err != nil {
		return err
	}
	res, err := sys.RunEpoch(func(g *guestos.Guest) error {
		return g.WriteUser(pid, buf, bytes.Repeat([]byte{'A'}, 80))
	})
	if err != nil {
		return err
	}
	if res.Incident == nil {
		return fmt.Errorf("expected the overflow to be detected")
	}
	fmt.Printf("incident at epoch %d: %s\n", res.Incident.Epoch, res.Findings[0].Description)
	fmt.Println("converting the compromised VM into a monitored honeypot...")

	hp, err := honeypot.Convert(sys.Guest)
	if err != nil {
		return err
	}
	// The "attacker" keeps working inside the quarantined VM.
	if _, err := hp.RunEpoch(func(g *guestos.Guest) error {
		if err := g.SendPacket(pid, [4]byte{66, 66, 66, 66}, 6666, []byte("c2 checkin")); err != nil {
			return err
		}
		return g.HijackSyscall(9, 0xdead)
	}); err != nil {
		return err
	}
	if _, err := hp.RunEpoch(func(g *guestos.Guest) error {
		mpid, err := g.StartProcess("cryptolocker", 0, 4)
		if err != nil {
			return err
		}
		return g.WriteDisk(mpid, "/tmp/dropper.bin", []byte("second stage payload"))
	}); err != nil {
		return err
	}
	if err := hp.Release(); err != nil {
		return err
	}
	fmt.Println()
	fmt.Println(hp.Report())
	return nil
}
