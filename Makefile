GO ?= go

.PHONY: build test verify verify-quick bench pause-json bench-fleet

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification: static analysis plus the race detector over the
# whole tree (the parallel pause path runs real worker pools).
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

# Short race pass over just the packages with real concurrency: the
# sharded checkpoint copy, the concurrent detector scan, the controller
# that drives both, and the fleet scheduler running many controllers on
# one shared hypervisor.
verify-quick:
	$(GO) test -race ./internal/checkpoint ./internal/detect ./internal/core ./internal/hv ./internal/fleet

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Regenerate the machine-readable parallel pause-path benchmark.
pause-json:
	$(GO) run ./cmd/crimes-bench -pause-json BENCH_pause.json

# Regenerate the machine-readable fleet-scheduling benchmark. The sweep
# is priced by the deterministic cost model (fixed workload counts, no
# wall-clock inputs), so the output is byte-stable across runs.
bench-fleet:
	$(GO) run ./cmd/crimes-bench -fleet-json BENCH_fleet.json
