GO ?= go

.PHONY: build test verify verify-quick bench pause-json

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification: static analysis plus the race detector over the
# whole tree (the parallel pause path runs real worker pools).
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

# Short race pass over just the packages with real concurrency: the
# sharded checkpoint copy, the concurrent detector scan, and the
# controller that drives both.
verify-quick:
	$(GO) test -race ./internal/checkpoint ./internal/detect ./internal/core

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Regenerate the machine-readable parallel pause-path benchmark.
pause-json:
	$(GO) run ./cmd/crimes-bench -pause-json BENCH_pause.json
