GO ?= go

.PHONY: build test verify verify-quick bench bench-all pause-json bench-fleet \
	bench-scan bench-cow bench-remus bench-cluster bench-web fmt-check \
	static-check ci bench-drift scenarios

build:
	$(GO) build ./...

test:
	$(GO) test -shuffle=on ./...

# Full verification: static analysis plus the race detector over the
# whole tree (the parallel pause path runs real worker pools).
verify: build
	$(GO) vet ./...
	$(GO) test -race ./...

# Short race pass over just the packages with real concurrency: the
# sharded checkpoint copy, the concurrent detector scan, the controller
# that drives both, the fleet scheduler running many controllers on one
# shared hypervisor, and the observability layer they all emit into.
# The final steps drive traced fleet runs end-to-end under the race
# detector: many VMs emitting into one shared tracer and registry, once
# eagerly and once with the CoW commit's background copier and write
# faults live.
verify-quick:
	$(GO) test -race ./internal/checkpoint ./internal/detect ./internal/core ./internal/hv ./internal/fleet ./internal/cluster ./internal/obs
	$(GO) run -race ./cmd/crimes -vms 3 -stagger -epochs 2 \
		-trace /tmp/crimes-verify-trace.jsonl -metrics /tmp/crimes-verify-metrics.txt >/dev/null
	$(GO) run -race ./cmd/crimes -vms 3 -stagger -epochs 2 -cow \
		-trace /tmp/crimes-verify-trace-cow.jsonl -metrics /tmp/crimes-verify-metrics-cow.txt >/dev/null
	$(GO) run -race ./cmd/crimes -vms 3 -stagger -epochs 2 -remus delta+dedup -opt noopt \
		-trace /tmp/crimes-verify-trace-delta.jsonl -metrics /tmp/crimes-verify-metrics-delta.txt >/dev/null
	$(GO) run -race ./cmd/crimes -hosts 3 -vms 6 -epochs 4 -host-kill host1:3 \
		-trace /tmp/crimes-verify-trace-cluster.jsonl -metrics /tmp/crimes-verify-metrics-cluster.txt >/dev/null
	$(GO) run -race ./cmd/crimes -vms 8 -stagger -epochs 4 -slo 2500us \
		-trace /tmp/crimes-verify-trace-slo.jsonl -metrics /tmp/crimes-verify-metrics-slo.txt >/dev/null

# gofmt gate: fail listing any file that is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck gate: runs when the binary is installed (CI installs it);
# skipped silently elsewhere so `make ci` needs nothing beyond the Go
# toolchain.
static-check:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; fi

# Scenario outcome gate: the full adversarial matrix (attack family x
# workload x fault schedule x config arm) with recorded expected
# outcomes. Any drift — a detection lost, an expected evasion suddenly
# detected, a clean arm raising findings — fails the run.
scenarios: build
	$(GO) run ./cmd/crimes -scenario all

# Regenerate every BENCH_*.json artifact in one pass; the single source
# of truth for what "all benchmarks" means.
bench-all: pause-json bench-fleet bench-scan bench-cow bench-remus bench-cluster bench-web

# Benchmark drift gate: the BENCH_*.json artifacts are priced by the
# deterministic cost model, so regenerating them must be a no-op. Any
# diff means a change altered the priced pause path (or the artifacts
# were not regenerated) and must be committed deliberately.
bench-drift: bench-all
	git diff --exit-code BENCH_*.json

# Everything the CI workflow runs, in the same order, for local use.
ci: fmt-check static-check build
	$(GO) vet ./...
	$(GO) test -shuffle=on ./...
	$(GO) test -race ./...
	$(MAKE) scenarios
	$(MAKE) bench-drift

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

# Regenerate the machine-readable parallel pause-path benchmark.
pause-json:
	$(GO) run ./cmd/crimes-bench -pause-json BENCH_pause.json

# Regenerate the machine-readable fleet-scheduling benchmark. The sweep
# is priced by the deterministic cost model (fixed workload counts, no
# wall-clock inputs), so the output is byte-stable across runs.
bench-fleet:
	$(GO) run ./cmd/crimes-bench -fleet-json BENCH_fleet.json

# Regenerate the machine-readable scan-path cache benchmark. This one
# runs the real controller (two arms: per-epoch mappings vs persistent
# cache) with Workers=1 and a fixed seed, so it too is byte-stable.
bench-scan:
	$(GO) run ./cmd/crimes-bench -scan-json BENCH_scan.json

# Regenerate the machine-readable CoW commit benchmark: the real
# controller sweeps working-set sizes under the eager and copy-on-write
# commits with Workers=1 and a fixed seed, so it too is byte-stable.
bench-cow:
	$(GO) run ./cmd/crimes-bench -cow-json BENCH_cow.json

# Regenerate the machine-readable delta-replication benchmark: the real
# controller sweeps dirty-set sizes and rewrite locality under the raw,
# delta, and delta+dedup wire protocols with Workers=1 and a fixed
# seed, so it too is byte-stable.
bench-remus:
	$(GO) run ./cmd/crimes-bench -remus-json BENCH_remus.json

# Regenerate the machine-readable web-scale load benchmark: every
# protection arm's epoch timeline is captured from the real controller
# with Workers=1 base configs and fixed seeds, then replayed into the
# deterministic cohort load generator in virtual time, so the output is
# byte-stable.
bench-web:
	$(GO) run ./cmd/crimes-bench -web-json BENCH_web.json

# Regenerate the machine-readable multi-host cluster benchmark: the
# scale and ring sections are priced by the deterministic cost model
# and hash ring, and the failover section drives the real control
# plane (kill vs no-kill arms) with Workers=1 and a fixed seed, so the
# output is byte-stable.
bench-cluster:
	$(GO) run ./cmd/crimes-bench -cluster-json BENCH_cluster.json
