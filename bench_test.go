package crimes_test

// One benchmark per paper table and figure (run with `go test -bench=.`),
// plus real micro-benchmarks for the claims the substrate can measure
// directly (canary validation rate, copy paths, checkpoint cost). The
// table/figure benchmarks execute the corresponding experiment generator
// and log its rows on the first iteration, so `go test -bench . -v`
// regenerates the full evaluation.
//
// This file lives in the external test package: it imports
// internal/experiments, which reaches the scenario arm catalog, which
// in turn builds on the root package — an import cycle if this were an
// in-package test.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	crimes "repro"
	"repro/internal/checkpoint"
	"repro/internal/cost"
	"repro/internal/detect"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/mem"
	"repro/internal/vmi"
	"repro/internal/workload"
)

func benchExperiment(b *testing.B, id string) {
	gen, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := gen()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + res.Text)
		}
	}
}

func BenchmarkTable1CostBreakdown(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkTable2ParsecSuite(b *testing.B)    { benchExperiment(b, "table2") }
func BenchmarkTable3VMICosts(b *testing.B)       { benchExperiment(b, "table3") }
func BenchmarkFig3ParsecNormalized(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4SwaptionsBreakdown(b *testing.B) {
	benchExperiment(b, "fig4")
}
func BenchmarkFig5IntervalSweep(b *testing.B)  { benchExperiment(b, "fig5") }
func BenchmarkFig6aFluidanimate(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFig6bBitmapScan(b *testing.B)    { benchExperiment(b, "fig6b") }
func BenchmarkFig7WebServer(b *testing.B)      { benchExperiment(b, "fig7") }
func BenchmarkFig8AttackTimeline(b *testing.B) { benchExperiment(b, "fig8") }
func BenchmarkCase2MalwareReport(b *testing.B) { benchExperiment(b, "case2") }
func BenchmarkRemusVsCRIMES(b *testing.B)      { benchExperiment(b, "remus") }

// BenchmarkCanaryValidationRate measures the real guest-aided canary
// scan. The paper reports ~90,000 canary validations per millisecond;
// the reported canaries/ms metric is this substrate's real rate.
func BenchmarkCanaryValidationRate(b *testing.B) {
	h := hv.New(4112)
	dom, err := h.CreateDomain("guest", 4096)
	if err != nil {
		b.Fatal(err)
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{Seed: 1, CanaryCapacity: 2048})
	if err != nil {
		b.Fatal(err)
	}
	pid, err := g.StartProcess("app", 0, 256)
	if err != nil {
		b.Fatal(err)
	}
	const canaries = 2000
	for i := 0; i < canaries; i++ {
		if _, err := g.Malloc(pid, 128); err != nil {
			b.Fatal(err)
		}
	}
	ctx, err := vmi.NewContext(dom, g.Profile(), g.SystemMap())
	if err != nil {
		b.Fatal(err)
	}
	sc := &detect.ScanContext{VMI: ctx, Counts: &detect.ScanCounts{}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := detect.CanaryModule{}.Scan(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(fs) != 0 {
			b.Fatal("unexpected findings")
		}
	}
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(canaries/(perOp/1e6), "canaries/ms")
}

// BenchmarkCheckpointPath measures the real cost of propagating one
// epoch's dirty pages for each optimization level — the socket path
// really serializes and AES-encrypts to a restore process, the memcpy
// paths really copy frames (Optimization 1's real effect).
func BenchmarkCheckpointPath(b *testing.B) {
	const pages = 2048
	const dirtyPages = 256
	for _, opt := range []cost.Optimization{cost.NoOpt, cost.Memcpy, cost.Premap, cost.Full} {
		b.Run(opt.String(), func(b *testing.B) {
			h := hv.New(2*pages + 8)
			dom, err := h.CreateDomain("vm", pages)
			if err != nil {
				b.Fatal(err)
			}
			c, err := checkpoint.New(h, dom, opt)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			data := bytes.Repeat([]byte{0xAB}, mem.PageSize)
			b.SetBytes(dirtyPages * mem.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for p := 0; p < dirtyPages; p++ {
					data[0] = byte(i)
					if err := dom.WritePhys(uint64(p*8)*mem.PageSize%dom.MemBytes(), data); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := c.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPauseParallel measures the parallel pause path on a 64 MiB
// dirty set at 1, 2, 4 and 8 workers. The reported vpause_ms metric is
// the calibrated cost model's virtual pause time (CheckpointParallel),
// which is deterministic and shows the >=2x speedup at 4 workers even
// on hosts where GOMAXPROCS limits real concurrency; ns/op is the
// substrate's real wall-clock commit time.
func BenchmarkPauseParallel(b *testing.B) {
	const pages = 16384 // 64 MiB guest, fully dirty each iteration
	m := cost.Default()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			h := hv.New(2*pages + 8)
			dom, err := h.CreateDomain("vm", pages)
			if err != nil {
				b.Fatal(err)
			}
			c, err := checkpoint.NewWithWorkers(h, dom, cost.Full, workers)
			if err != nil {
				b.Fatal(err)
			}
			defer c.Close()
			var counts cost.Counts
			b.SetBytes(pages * mem.PageSize)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dom.MarkAllDirty()
				b.StartTimer()
				if counts, err = c.Checkpoint(); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			vpause := m.CheckpointParallel(cost.Full, counts, workers).Total()
			b.ReportMetric(float64(vpause)/1e6, "vpause_ms")
		})
	}
}

// BenchmarkFleet measures a real co-located fleet at 1, 2, 4 and 8 VMs
// under staggered scheduling: every VM runs the scaled swaptions
// workload for three epochs with epoch boundaries gated to one paused
// VM at a time. ns/op is the real wall-clock fleet round; the reported
// metrics are the fleet's virtual aggregate pause and the cost model's
// synchronized-scheduling aggregate for the same per-VM dirty counts
// (the BENCH_fleet.json comparison, reproduced on the live substrate).
func BenchmarkFleet(b *testing.B) {
	m := cost.Default()
	spec, err := workload.ParsecByName("swaptions")
	if err != nil {
		b.Fatal(err)
	}
	const epochs = 3
	for _, vms := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("vms=%d", vms), func(b *testing.B) {
			var agg time.Duration
			var syncAgg time.Duration
			for i := 0; i < b.N; i++ {
				f, err := fleet.New(fleet.Config{
					VMs:        vms,
					GuestPages: 512,
					Stagger:    true,
					Seed:       7,
					Core: crimes.Config{
						EpochInterval: 20 * time.Millisecond,
						Workers:       4,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				runners := make([]*workload.Runner, vms)
				for j := range runners {
					runners[j] = workload.NewRunner(spec, 128)
				}
				rep := f.Run(epochs, func(vm *fleet.VM, epoch int) func(g *guestos.Guest) error {
					r := runners[vm.Index]
					return func(g *guestos.Guest) error {
						return r.RunEpoch(g, 20*time.Millisecond)
					}
				})
				agg = rep.AggregatePause
				syncAgg = 0
				for _, s := range rep.VMs {
					perEpoch := cost.Counts{
						TotalPages:  512,
						DirtyPages:  s.DirtyPages / epochs,
						BytesCopied: s.DirtyPages / epochs * mem.PageSize,
					}
					syncAgg += time.Duration(epochs) *
						m.CheckpointContended(cost.Full, perEpoch, 4, vms).Total()
				}
				if err := f.Close(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(agg)/1e6, "vpause_agg_ms")
			b.ReportMetric(float64(syncAgg)/1e6, "vpause_sync_ms")
		})
	}
}

// BenchmarkEpochEndToEnd measures a full real CRIMES epoch: workload
// writes, pause, audit, checkpoint, release, resume.
func BenchmarkEpochEndToEnd(b *testing.B) {
	sys, err := crimes.Launch(crimes.Options{GuestPages: 2048, Config: crimes.Config{EpochInterval: 50 * time.Millisecond}})
	if err != nil {
		b.Fatal(err)
	}
	defer sys.Close()
	var pid uint32
	if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
		pid, err = g.StartProcess("bench", 0, 64)
		return err
	}); err != nil {
		b.Fatal(err)
	}
	payload := bytes.Repeat([]byte{1}, 512)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.RunEpoch(func(g *guestos.Guest) error {
			base := g.Profile().UserVirtBase
			for p := 0; p < 16; p++ {
				if err := g.WriteUser(pid, base+uint64(p)*mem.PageSize, payload); err != nil {
					return err
				}
			}
			return nil
		}); err != nil {
			b.Fatal(err)
		}
	}
}
