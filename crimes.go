// Package crimes is the public API of the CRIMES reproduction: an
// evidence-based security framework for virtual machines that couples
// speculative execution with memory introspection (Middleware '18).
//
// A protected system runs a simulated guest OS inside a simulated
// hypervisor domain. Execution proceeds in epochs: the guest's external
// outputs are buffered, the VM is paused at each epoch boundary, VMI
// scan modules audit memory for evidence of attacks, and on a passing
// audit the epoch is checkpointed and its outputs released. On a failed
// audit the outputs are discarded and the analyzer rolls back, replays,
// and produces a forensic report.
//
// Quick start:
//
//	sys, err := crimes.Launch(crimes.Options{})
//	...
//	res, err := sys.RunEpoch(func(g *guestos.Guest) error {
//		// guest work for one epoch
//		return nil
//	})
//	if res.Incident != nil {
//		fmt.Println(res.Incident.Report.Render())
//	}
package crimes

import (
	"fmt"
	"io"

	"repro/internal/analyze"
	"repro/internal/checkpoint"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/detect"
	"repro/internal/fault"
	"repro/internal/guestos"
	"repro/internal/hv"
	"repro/internal/netbuf"
	"repro/internal/obs"
	"repro/internal/volatility"
)

// Re-exported configuration types.
type (
	// Config configures the CRIMES controller (epoch interval, safety
	// mode, scan mode, optimization level, modules).
	Config = core.Config
	// Controller is the per-VM CRIMES instance.
	Controller = core.Controller
	// EpochResult reports one epoch's outcome.
	EpochResult = core.EpochResult
	// Incident is a failed audit plus the analyzer's output.
	Incident = core.Incident
	// Finding is one piece of attack evidence.
	Finding = detect.Finding
	// Module is a pluggable detector scan.
	Module = detect.Module
	// Report is the rendered forensic report.
	Report = volatility.Report
	// Pinpoint identifies the exact replayed write that caused an attack.
	Pinpoint = analyze.Pinpoint
	// ScanMode selects synchronous or asynchronous audits.
	ScanMode = core.ScanMode
	// ScanCacheMode selects the audit's guest-memory read strategy
	// (direct, per-epoch mappings, or a persistent mapping cache with
	// incremental walks).
	ScanCacheMode = core.ScanCacheMode
	// RemusMode selects the replication conduit's wire protocol (raw
	// full-page copies, XOR-delta encoding, or delta plus content-hash
	// deduplication).
	RemusMode = core.RemusMode
	// Recovery reports the retries, degradations, and unwind path an
	// epoch needed (zero value: no recovery at all).
	Recovery = core.Recovery
	// CommitReport describes one checkpoint commit: recovery events,
	// measured parallel phase timings, and the pipelined remote-
	// replication window state.
	CommitReport = checkpoint.CommitReport
	// FaultInjector deterministically fails the Nth occurrence of a
	// named hypercall, conduit, or disk operation (testing and chaos
	// experiments).
	FaultInjector = fault.Injector
	// Observer is the observability hook hung off Config.Obs: a
	// structured epoch trace plus a metrics registry. The nil default is
	// a strict no-op.
	Observer = obs.Observer
	// TraceEvent is one structured trace record (one epoch phase of one
	// VM).
	TraceEvent = obs.Event
	// MetricsRegistry collects counters, gauges, and histograms and
	// renders a deterministic Prometheus-format text dump.
	MetricsRegistry = obs.Registry
)

// NewObserver builds an observer for Config.Obs. When trace is non-nil
// the epoch trace is written to it as JSONL (one event per line); when
// metrics is set a fresh registry collects per-VM metrics, available
// via Observer.Metrics.DumpString(). Either half may be disabled.
func NewObserver(trace io.Writer, metrics bool) *Observer {
	o := &Observer{}
	if trace != nil {
		o.Trace = obs.NewTracer(obs.NewJSONLSink(trace))
	}
	if metrics {
		o.Metrics = obs.NewRegistry()
	}
	return o
}

// Safety modes (output buffering policy).
const (
	Synchronous = netbuf.Synchronous
	BestEffort  = netbuf.BestEffort
)

// Scan scheduling modes.
const (
	ScanSync  = core.ScanSync
	ScanAsync = core.ScanAsync
)

// Scan-cache modes (Config.ScanCache). Off is the default and
// reproduces the uncached scan path exactly.
const (
	ScanCacheOff      = core.ScanCacheOff
	ScanCacheUncached = core.ScanCacheUncached
	ScanCacheOn       = core.ScanCacheOn
)

// ParseScanCacheMode parses "off", "uncached", or "on" (flag values).
var ParseScanCacheMode = core.ParseScanCacheMode

// Replication wire-protocol modes (Config.Remus). Raw is the default
// and reproduces the full-page conduit protocol exactly.
const (
	RemusRaw        = core.RemusRaw
	RemusDelta      = core.RemusDelta
	RemusDeltaDedup = core.RemusDeltaDedup
)

// ParseRemusMode parses "raw", "delta", or "delta+dedup" (flag values).
var ParseRemusMode = core.ParseRemusMode

// Checkpointing optimization levels (§4.1).
const (
	OptNone   = cost.NoOpt
	OptMemcpy = cost.Memcpy
	OptPremap = cost.Premap
	OptFull   = cost.Full
)

// Unwind paths recorded in Recovery after an epoch error.
const (
	UnwindNone     = core.UnwindNone
	UnwindResume   = core.UnwindResume
	UnwindRollback = core.UnwindRollback
	UnwindHalt     = core.UnwindHalt
)

// DefaultModules returns the full detector stack: guest-aided canary
// scanning plus the unaided malware, syscall-integrity, and
// hidden-process scans.
func DefaultModules() []Module {
	return []Module{
		detect.CanaryModule{},
		detect.NewMalwareModule(nil),
		detect.SyscallModule{},
		detect.HiddenProcessModule{},
	}
}

// Options configures Launch.
type Options struct {
	// GuestPages is the guest's memory size in 4 KiB pages (default 1024).
	GuestPages int
	// Windows selects the Windows guest profile instead of Linux.
	Windows bool
	// Seed is the guest's boot entropy (canary secret).
	Seed int64
	// Config is the controller configuration; zero values take the
	// defaults (200 ms epochs, Synchronous safety, Full optimization).
	Config Config
}

// System is a launched guest under CRIMES protection.
type System struct {
	HV         *hv.Hypervisor
	Guest      *guestos.Guest
	Controller *Controller
}

// Launch boots a guest on a fresh hypervisor and attaches a CRIMES
// controller. If no modules are configured, DefaultModules are used.
func Launch(opts Options) (*System, error) {
	if opts.GuestPages <= 0 {
		opts.GuestPages = 1024
	}
	if opts.Config.Modules == nil {
		opts.Config.Modules = DefaultModules()
	}
	prof := guestos.LinuxProfile()
	if opts.Windows {
		prof = guestos.WindowsProfile()
	}
	h := hv.New(2*opts.GuestPages + 16)
	dom, err := h.CreateDomain("guest", opts.GuestPages)
	if err != nil {
		return nil, fmt.Errorf("crimes: %w", err)
	}
	g, err := guestos.Boot(dom, guestos.BootConfig{Profile: prof, Seed: opts.Seed})
	if err != nil {
		return nil, fmt.Errorf("crimes: %w", err)
	}
	ctl, err := core.New(h, g, opts.Config)
	if err != nil {
		return nil, fmt.Errorf("crimes: %w", err)
	}
	return &System{HV: h, Guest: g, Controller: ctl}, nil
}

// RunEpoch executes one epoch of guest work under protection.
func (s *System) RunEpoch(work func(*guestos.Guest) error) (*EpochResult, error) {
	return s.Controller.RunEpoch(work)
}

// Close releases the system's checkpointing resources.
func (s *System) Close() error { return s.Controller.Close() }
