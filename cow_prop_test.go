package crimes

import (
	"crypto/sha256"
	"reflect"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/guestos"
)

// The CoW equivalence property: the copy-on-write commit strategy is an
// optimization, not a semantic change. For randomized workloads, clean
// or under attack, every epoch's findings and incident outcome must be
// identical with CoW on and off, and once the background copier is
// quiesced the backup must hold byte-for-byte the same snapshot the
// eager commit path produces. Scripts reuse the scan-cache property
// generator so both suites draw from the same workload distribution.

type cowEpochOutcome struct {
	findings []Finding
	incident bool
	cow      cost.CoWCounts
}

type cowRun struct {
	epochs        []cowEpochOutcome
	primaryDigest [32]byte
	backupDigest  [32]byte
}

func runCowArm(t *testing.T, seed int64, cfg Config, script []propOp, attack string) *cowRun {
	t.Helper()
	cfg.Modules = DefaultModules()
	cfg.EpochInterval = 20 * time.Millisecond
	sys, err := Launch(Options{GuestPages: 512, Seed: seed, Config: cfg})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer sys.Close()

	var pids []uint32
	type alloc struct {
		pid  uint32
		va   uint64
		size int
	}
	var allocs []alloc
	run := &cowRun{}
	next := 0
	for e := 1; e <= propEpochs; e++ {
		res, err := sys.RunEpoch(func(g *guestos.Guest) error {
			for ; next < len(script) && script[next].epoch == e; next++ {
				op := script[next]
				switch op.kind {
				case "start":
					pid, err := g.StartProcess("cowproc", 1000, op.size)
					if err != nil {
						return err
					}
					pids = append(pids, pid)
				case "compute":
					if err := g.Compute(pids[0], op.n); err != nil {
						return err
					}
				case "malloc":
					va, err := g.Malloc(pids[len(pids)-1], op.size)
					if err != nil {
						return err
					}
					allocs = append(allocs, alloc{pids[len(pids)-1], va, op.size})
				case "write":
					if len(allocs) == 0 {
						continue
					}
					a := allocs[op.n%len(allocs)]
					buf := make([]byte, 1+op.n%a.size)
					for i := range buf {
						buf[i] = byte(op.n + i)
					}
					if err := g.WriteUser(a.pid, a.va, buf); err != nil {
						return err
					}
				case "packet":
					payload := make([]byte, op.size)
					if err := g.SendPacket(pids[0], [4]byte{10, 0, 0, 9}, 443, payload); err != nil {
						return err
					}
				}
			}
			if e == propEpochs && attack != "" {
				return injectPropAttack(g, pids[len(pids)-1], attack)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("seed %d attack %q epoch %d: %v", seed, attack, e, err)
		}
		run.epochs = append(run.epochs, cowEpochOutcome{
			findings: res.Findings,
			incident: res.Incident != nil,
			cow:      res.CoW,
		})
		if res.Incident != nil {
			break
		}
	}

	// Settle in-flight lazy copies, then digest both domains: with the
	// copier drained the CoW backup must equal the eager-commit backup.
	ckpt := sys.Controller.Checkpointer()
	if err := ckpt.Quiesce(); err != nil {
		t.Fatalf("seed %d attack %q: quiesce: %v", seed, attack, err)
	}
	prim, err := ckpt.Primary().DumpMemory()
	if err != nil {
		t.Fatalf("dump primary: %v", err)
	}
	back, err := ckpt.Backup().DumpMemory()
	if err != nil {
		t.Fatalf("dump backup: %v", err)
	}
	run.primaryDigest = sha256.Sum256(prim.Mem)
	run.backupDigest = sha256.Sum256(back.Mem)
	return run
}

func TestCoWPropertyEquivalence(t *testing.T) {
	attacks := []string{"", "", "overflow", "malware", "hijack", "hidden"}
	for i, attack := range attacks {
		seed := int64(400 + 23*i)
		script := genScript(seed)
		off := runCowArm(t, seed, Config{}, script, attack)
		on := runCowArm(t, seed, Config{CoW: true}, script, attack)

		if len(on.epochs) != len(off.epochs) {
			t.Fatalf("seed %d attack %q: CoW arm ran %d epochs, eager ran %d",
				seed, attack, len(on.epochs), len(off.epochs))
		}
		for e := range off.epochs {
			if !reflect.DeepEqual(on.epochs[e].findings, off.epochs[e].findings) {
				t.Errorf("seed %d attack %q epoch %d: CoW findings diverge:\n%+v\nvs eager:\n%+v",
					seed, attack, e+1, on.epochs[e].findings, off.epochs[e].findings)
			}
			if on.epochs[e].incident != off.epochs[e].incident {
				t.Errorf("seed %d attack %q epoch %d: CoW incident=%v, eager=%v",
					seed, attack, e+1, on.epochs[e].incident, off.epochs[e].incident)
			}
		}
		if attack != "" && !off.epochs[len(off.epochs)-1].incident {
			t.Errorf("seed %d: attack %q went undetected", seed, attack)
		}

		// The eager arm never reports CoW activity.
		for e, out := range off.epochs {
			if out.cow != (cost.CoWCounts{}) {
				t.Errorf("seed %d: eager arm epoch %d carries CoW counters: %+v", seed, e+1, out.cow)
			}
		}
		// The CoW arm really armed pages at its commits.
		var total cost.CoWCounts
		for _, out := range on.epochs {
			total.Add(out.cow)
		}
		if total.ArmedPages == 0 {
			t.Errorf("seed %d attack %q: CoW arm never armed a page", seed, attack)
		}

		// Guest state and (quiesced) backup snapshots are byte-identical.
		if on.primaryDigest != off.primaryDigest {
			t.Errorf("seed %d attack %q: primary memory diverges between CoW and eager", seed, attack)
		}
		if on.backupDigest != off.backupDigest {
			t.Errorf("seed %d attack %q: backup snapshot diverges between CoW and eager", seed, attack)
		}
	}
}
